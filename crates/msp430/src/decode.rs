//! Pre-decoded instruction representation and basic-block lowering.
//!
//! The interpreter ([`crate::cpu::Cpu::step`]) re-reads and re-decodes
//! every instruction from raw memory on every execution. This module
//! lowers a run of instructions starting at a program counter into a
//! [`Block`] of [`DecodedInstr`]s once, precomputing everything that is a
//! pure function of the instruction bytes and their address:
//!
//! * the decoded [`Instr`] itself (operand modes are position-dependent
//!   but static — `isa.rs` resolves symbolic operands at decode time),
//! * the cycle-table cost ([`crate::cpu`]'s tables are pure functions of
//!   addressing modes),
//! * the attribution [`Category`] (a pure function of the fetch region),
//! * and a dispatch [`Plan`] describing how much of the per-fetch bus
//!   accounting can be batched without changing any observable statistic.
//!
//! The dispatch engine that caches and invalidates these blocks lives in
//! [`crate::blockcache`].

use crate::cpu::{ext_count_raw, instr_cycles};
use crate::isa::{Instr, Opcode, Operand, Reg, Size};
use crate::mem::{Bus, Region};
use crate::trace::Category;

/// Upper bound on instructions per block, so a pathological decode (e.g.
/// a long run of data bytes that happen to decode) cannot build an
/// unbounded block.
pub const MAX_BLOCK_INSTRS: usize = 64;

/// How a cached instruction is dispatched. Every plan reproduces the
/// interpreter's observable behaviour (statistics, hardware-cache state,
/// sanitizer latching, faults) exactly; the plans differ only in how much
/// of the per-word fetch ceremony is provably redundant and elided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// SRAM text, sanitizer fetch checks provably no-ops, and execution
    /// touches no bus location: fetch accounting is a bare counter bump
    /// and contention bookkeeping is skipped (no FRAM line can be
    /// touched).
    SramPure,
    /// SRAM text with elided sanitizer checks, but execution may access
    /// memory, so contention bookkeeping runs.
    SramFast,
    /// FRAM text with elided sanitizer checks: each word still charges
    /// the stateful hardware-cache/wait/contention model per access.
    FramFast,
    /// Full per-word replay through [`Bus::account_ifetch`] — used when
    /// the sanitizer must observe each fetch (e.g. tracked SRAM bytes not
    /// yet proven filled).
    Replay,
}

/// Pre-matched source operand of a lowered Format-I instruction (see
/// [`ExecPlan::Alu`]). Mirrors [`Operand`] with the decode-time folding
/// already applied (symbolic and absolute collapse to an address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcPlan {
    /// Immediate (including constant-generator values).
    Imm(u16),
    /// Register direct.
    Reg(Reg),
    /// Memory at `reg + offset` (indexed).
    Idx(Reg, u16),
    /// Memory at a fixed address (symbolic/absolute).
    Abs(u16),
    /// Memory at `reg` (indirect).
    Ind(Reg),
    /// Memory at `reg`, then increment `reg` (`@Rn+`; +2 for SP, else
    /// operand size).
    IndInc(Reg),
}

/// Pre-matched destination operand of a lowered Format-I instruction.
/// Format-I destinations only encode register, indexed, symbolic and
/// absolute modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DstPlan {
    /// Register direct.
    Reg(Reg),
    /// Memory at `reg + offset` (indexed).
    Idx(Reg, u16),
    /// Memory at a fixed address (symbolic/absolute).
    Abs(u16),
}

/// Pre-lowered execution dispatch: the operand-shape matching that the
/// generic path ([`crate::cpu::Cpu::exec_decoded`]) performs per execution
/// is done once at decode time, and dispatch goes straight to a flattened
/// executor. Every lowered path shares the interpreter's ALU/flag cores
/// ([`crate::cpu::Cpu`]'s `alu_format_i`, `rotate_core`, `sxt_core`,
/// `jump_taken`), so the semantics cannot diverge; only operand-location
/// plumbing is flattened away.
#[derive(Debug, Clone, Copy)]
pub enum ExecPlan {
    /// Format-I `op.size #imm, Rd` — bus-free, batchable.
    AluImm { op: Opcode, size: Size, v: u16, dst: Reg },
    /// Format-I `op.size Rs, Rd` — bus-free, batchable.
    AluReg { op: Opcode, size: Size, src: Reg, dst: Reg },
    /// Any other Format-I instruction (at least one memory operand).
    Alu { op: Opcode, size: Size, src: SrcPlan, dst: DstPlan },
    /// Format-II RRA/RRC/SWPB/SXT on a register.
    Fmt2Reg { op: Opcode, size: Size, dst: Reg },
    /// PUSH of any operand.
    Push { size: Size, src: SrcPlan },
    /// CALL through any operand.
    Call { src: SrcPlan },
    /// RETI.
    Reti,
    /// Conditional/unconditional jump; `offset` is the pre-scaled byte
    /// displacement applied to the post-fetch PC when taken.
    Jmp { op: Opcode, offset: u16 },
    /// Generic interpretation of the decoded instruction
    /// (memory-destination Format-II shifts and malformed shapes).
    Generic,
}

/// One pre-decoded instruction, pinned to its fetch address.
#[derive(Debug, Clone, Copy)]
pub struct DecodedInstr {
    /// Address the instruction was decoded from.
    pub pc: u16,
    /// PC after the fetch (before any control-flow effect of execution).
    pub next_pc: u16,
    /// Number of 16-bit words occupied (1–3).
    pub words: u8,
    /// Attribution category of the fetch region.
    pub cat: Category,
    /// Precomputed cycle-table cost.
    pub cycles: u32,
    /// Dispatch plan (see [`Plan`]).
    pub plan: Plan,
    /// Execution dispatch (see [`ExecPlan`]).
    pub exec: ExecPlan,
    /// Whether the batched engine must run the full per-instruction poll
    /// set after executing this instruction (see [`needs_poll`]): false
    /// for instructions that provably cannot store, halt, move SP, or
    /// latch a violation — those only need the cycle-budget check.
    pub poll: bool,
    /// Batch aggregate of the maximal run of consecutive batchable
    /// instructions starting here (`len == 0` when this instruction is
    /// not batchable); filled by [`build_block`].
    pub run: RunPlan,
    /// Safe upper bound on the cycles executing this instruction and the
    /// rest of its block can add to the statistics (see [`worst_cycles`]);
    /// filled by [`build_block`]. When the remaining cycle budget exceeds
    /// this bound, the batched engine can execute to the end of the block
    /// without any per-instruction cycle check.
    pub worst_suffix: u32,
    /// The decoded instruction.
    pub instr: Instr,
}

/// A decoded basic block: a maximal straight-line run of instructions
/// starting at `start`, ending at the first control-flow terminator (or
/// the decode horizon).
#[derive(Debug, Clone)]
pub struct Block {
    /// First byte of the block.
    pub start: u16,
    /// One past the last byte (`u32` so a block may end at `0x1_0000`).
    pub end: u32,
    /// The instructions, in address order, each carrying its batch run
    /// aggregate and worst-case suffix bound (one contiguous array keeps
    /// the dispatch loop on a single cache-line stream).
    pub instrs: Vec<DecodedInstr>,
}

/// Static accounting aggregate for a run of consecutive *batchable*
/// instructions: provably pure execution (register/immediate operands
/// only, no stack-pointer writes) under a fetch plan with no per-word
/// sanitizer replay. Everything the run charges to the statistics except
/// the hardware cache's hit/miss split is a pure function of the
/// instruction bytes, so it is summed here once at decode time; see
/// [`crate::blockcache::BlockEngine::step_batched`] for how the cache
/// split itself collapses to one probe per distinct line.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunPlan {
    /// Instructions in the run (0 = no batched fast path at this index).
    pub len: u8,
    /// Total fetch words over the run (contiguous from the first PC).
    pub words: u16,
    /// Summed cycle-table cost.
    pub unstalled: u32,
    /// Summed same-instruction FRAM line-contention cycles: each
    /// instruction's fetch words span `lines` hardware-cache lines and
    /// cost `lines - 1` stall cycles — static because a pure instruction
    /// performs no other access (0 for SRAM runs).
    pub contention: u32,
}

/// Whether executing `instr` cannot touch the bus: all operands are
/// registers or immediates and the opcode has no implicit memory traffic.
/// (PUSH/CALL/RETI write or read the stack; any memory operand reads or
/// writes through the bus.)
fn exec_is_pure(instr: &Instr) -> bool {
    match *instr {
        Instr::FormatI { src, dst, .. } => {
            matches!(src, Operand::Reg(_) | Operand::Imm(_)) && matches!(dst, Operand::Reg(_))
        }
        Instr::FormatII { op, dst, .. } => {
            matches!(op, Opcode::Rra | Opcode::Rrc | Opcode::Swpb | Opcode::Sxt)
                && matches!(dst, Operand::Reg(_))
        }
        Instr::Jump { .. } => true,
    }
}

/// Whether `instr` writes the stack pointer as its destination. Such an
/// instruction is excluded from batched runs: the run loop's per-step
/// stack check must observe the new SP immediately.
fn writes_sp(instr: &Instr) -> bool {
    match *instr {
        Instr::FormatI { dst, .. } | Instr::FormatII { dst, .. } => dst == Operand::Reg(Reg::SP),
        Instr::Jump { .. } => false,
    }
}

/// Whether the batched engine must run the full per-instruction poll set
/// (stack check, violation, halt port, invalidation generation) after this
/// instruction. `false` only when the instruction provably cannot store
/// (register destination), cannot move SP (destination is not SP and the
/// source is not an `@SP+` auto-increment, which pops), and is not
/// PUSH/CALL/RETI (implicit stack traffic). Such instructions — loads and
/// pure ALU ops — can still stall on data-read misses, so the cycle-budget
/// check remains; everything else is statically impossible: stores need a
/// memory destination, the halt port and sanitizer store/ifetch checks
/// only trigger on writes or fetches, and data reads are never checked.
fn needs_poll(instr: &Instr) -> bool {
    match *instr {
        Instr::FormatI { src, dst, .. } => {
            !matches!(dst, Operand::Reg(_))
                || dst == Operand::Reg(Reg::SP)
                || matches!(src, Operand::IndirectInc(Reg::SP))
        }
        Instr::FormatII { op, dst, .. } => {
            matches!(op, Opcode::Push | Opcode::Call | Opcode::Reti)
                || !matches!(dst, Operand::Reg(_))
                || dst == Operand::Reg(Reg::SP)
        }
        Instr::Jump { .. } => false,
    }
}

/// Whether a decoded instruction may join a batched run: pure execution
/// (no bus traffic, so no store, halt port, sanitizer violation or code
/// invalidation is possible), no SP write, and a fetch plan that needs no
/// per-word sanitizer replay. A PC-writing pure instruction qualifies —
/// terminators are always last in their block, hence last in any run.
fn is_batchable(di: &DecodedInstr) -> bool {
    matches!(di.plan, Plan::SramPure | Plan::FramFast)
        && exec_is_pure(&di.instr)
        && !writes_sp(&di.instr)
}

/// Lowers an instruction's operand shape into its [`ExecPlan`] (see
/// there). Falls back to [`ExecPlan::Generic`] for shapes with implicit
/// stack traffic or that Format-I destinations cannot encode.
fn exec_plan(instr: &Instr) -> ExecPlan {
    match *instr {
        Instr::FormatI { op, size, src: Operand::Imm(v), dst: Operand::Reg(d) } => {
            ExecPlan::AluImm { op, size, v, dst: d }
        }
        Instr::FormatI { op, size, src: Operand::Reg(s), dst: Operand::Reg(d) } => {
            ExecPlan::AluReg { op, size, src: s, dst: d }
        }
        Instr::FormatI { op, size, src, dst } => {
            let d = match dst {
                Operand::Reg(r) => DstPlan::Reg(r),
                Operand::Indexed(x, r) => DstPlan::Idx(r, x),
                Operand::Symbolic(a) | Operand::Absolute(a) => DstPlan::Abs(a),
                // Not encodable as a Format-I destination; interpret.
                Operand::Indirect(_) | Operand::IndirectInc(_) | Operand::Imm(_) => {
                    return ExecPlan::Generic;
                }
            };
            ExecPlan::Alu { op, size, src: to_src_plan(src), dst: d }
        }
        Instr::FormatII {
            op: op @ (Opcode::Rra | Opcode::Rrc | Opcode::Swpb | Opcode::Sxt),
            size,
            dst: Operand::Reg(d),
        } => ExecPlan::Fmt2Reg { op, size, dst: d },
        Instr::FormatII { op: Opcode::Push, size, dst } => {
            ExecPlan::Push { size, src: to_src_plan(dst) }
        }
        Instr::FormatII { op: Opcode::Call, dst, .. } => ExecPlan::Call { src: to_src_plan(dst) },
        Instr::FormatII { op: Opcode::Reti, .. } => ExecPlan::Reti,
        Instr::Jump { op, offset_words } => {
            ExecPlan::Jmp { op, offset: (offset_words as u16).wrapping_mul(2) }
        }
        _ => ExecPlan::Generic,
    }
}

/// Maps an operand to its pre-matched [`SrcPlan`] (the source-position
/// lowering; Format-II destinations read through the same shapes).
pub(crate) fn to_src_plan(op: Operand) -> SrcPlan {
    match op {
        Operand::Imm(v) => SrcPlan::Imm(v),
        Operand::Reg(r) => SrcPlan::Reg(r),
        Operand::Indexed(x, r) => SrcPlan::Idx(r, x),
        Operand::Symbolic(a) | Operand::Absolute(a) => SrcPlan::Abs(a),
        Operand::Indirect(r) => SrcPlan::Ind(r),
        Operand::IndirectInc(r) => SrcPlan::IndInc(r),
    }
}

/// Whether `instr` (potentially) redirects control flow, ending a block.
/// Conservative: anything whose destination register is the PC counts.
fn is_terminator(instr: &Instr) -> bool {
    match *instr {
        Instr::Jump { .. } => true,
        Instr::FormatI { dst, .. } => dst == Operand::Reg(Reg::PC),
        Instr::FormatII { op, dst, .. } => {
            matches!(op, Opcode::Call | Opcode::Reti) || dst == Operand::Reg(Reg::PC)
        }
    }
}

/// Decodes the instruction at `pc` from current memory, or `None` when it
/// cannot be represented in a cached block (odd PC, non-memory region, a
/// fetch that would straddle regions or the top of the address space, or
/// an undecodable encoding). Callers fall back to the interpreter, which
/// reproduces the exact fault or MMIO behaviour.
fn decode_at(bus: &Bus, pc: u16) -> Option<DecodedInstr> {
    if pc & 1 != 0 {
        return None;
    }
    let region = bus.map().region_of(pc);
    if !matches!(region, Region::Sram | Region::Fram) {
        return None;
    }
    let w0 = bus.peek_word(pc);
    let ext = ext_count_raw(w0);
    let mut words = [w0, 0, 0];
    for (i, w) in words.iter_mut().enumerate().take(ext + 1).skip(1) {
        let a = u32::from(pc) + 2 * i as u32;
        if a >= 0x1_0000 {
            return None;
        }
        if bus.map().region_of(a as u16) != region {
            return None;
        }
        *w = bus.peek_word(a as u16);
    }
    let instr = Instr::decode(&words[..1 + ext], pc).ok()?;
    let n = 1 + ext;
    let cat = if region == Region::Sram { Category::AppSram } else { Category::AppFram };
    let skip = match bus.sanitizer() {
        None => true,
        Some(s) => (0..n).all(|i| s.can_skip_ifetch(pc.wrapping_add(2 * i as u16), 2)),
    };
    let plan = match (region, skip) {
        (Region::Sram, true) if exec_is_pure(&instr) => Plan::SramPure,
        (Region::Sram, true) => Plan::SramFast,
        (Region::Fram, true) => Plan::FramFast,
        _ => Plan::Replay,
    };
    let exec = exec_plan(&instr);
    Some(DecodedInstr {
        pc,
        next_pc: pc.wrapping_add(2 * n as u16),
        words: n as u8,
        cat,
        cycles: instr_cycles(&instr),
        plan,
        exec,
        poll: needs_poll(&instr),
        run: RunPlan::default(),
        worst_suffix: 0,
        instr,
    })
}

/// Builds the basic block starting at `start` from current memory, or
/// `None` if not even the first instruction is representable.
pub fn build_block(bus: &Bus, start: u16) -> Option<Block> {
    let mut instrs: Vec<DecodedInstr> = Vec::new();
    let mut pc = start;
    while let Some(di) = decode_at(bus, pc) {
        let next = di.next_pc;
        let term = is_terminator(&di.instr);
        instrs.push(di);
        // `next <= pc` means the fetch wrapped the 16-bit space.
        if term || instrs.len() >= MAX_BLOCK_INSTRS || next <= pc {
            break;
        }
        pc = next;
    }
    let last = instrs.last()?;
    let end = u32::from(last.pc) + 2 * u32::from(last.words);
    fill_runs(bus, &mut instrs);
    fill_worst_suffix(&mut instrs, bus.freq().fram_wait_cycles);
    Some(Block { start, end, instrs })
}

/// A safe upper bound on the cycles one execution of `di` can add to the
/// statistics: its unstalled table cost, plus a worst-case wait and
/// contention cycle for every fetch word and every data access it could
/// make (Format-I: source read, destination read, destination write;
/// Format-II: RETI pops two words, PUSH/CALL read one and write one, a
/// memory shift reads and writes — bounded at four).
fn worst_cycles(di: &DecodedInstr, fram_wait: u32) -> u32 {
    let data: u32 = match di.instr {
        Instr::FormatI { .. } => 3,
        Instr::FormatII { .. } => 4,
        Instr::Jump { .. } => 0,
    };
    di.cycles + (u32::from(di.words) + data) * (fram_wait + 1)
}

/// Fills the suffix sums of [`worst_cycles`] (see
/// [`DecodedInstr::worst_suffix`]).
fn fill_worst_suffix(instrs: &mut [DecodedInstr], fram_wait: u32) {
    let mut acc = 0u32;
    for di in instrs.iter_mut().rev() {
        acc = acc.saturating_add(worst_cycles(di, fram_wait));
        di.worst_suffix = acc;
    }
}

/// Suffix-scans the block for maximal batchable runs (see [`RunPlan`]).
fn fill_runs(bus: &Bus, instrs: &mut [DecodedInstr]) {
    for i in (0..instrs.len()).rev() {
        let di = &instrs[i];
        if !is_batchable(di) {
            continue;
        }
        let next = if i + 1 < instrs.len() { instrs[i + 1].run } else { RunPlan::default() };
        let contention = if di.cat == Category::AppFram {
            // Word fetches are contiguous and word-aligned, so the lines
            // spanned are exactly first..=last.
            let first = bus.hw_cache().line_of(di.pc);
            let last = bus.hw_cache().line_of(di.pc.wrapping_add(2 * (u16::from(di.words) - 1)));
            last - first
        } else {
            0
        };
        instrs[i].run = RunPlan {
            len: next.len.saturating_add(1),
            words: next.words + u16::from(di.words),
            unstalled: next.unstalled + di.cycles,
            contention: next.contention + contention,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::Frequency;
    use crate::hwcache::HwCache;
    use crate::isa::Size;
    use crate::mem::MemoryMap;

    fn bus_with(instrs: &[Instr], base: u16) -> Bus {
        let mut bus = Bus::new(MemoryMap::fr2355(), HwCache::fr2355(), Frequency::MHZ_8);
        let mut at = base;
        for i in instrs {
            for w in i.encode(at).unwrap() {
                bus.poke_word(at, w);
                at = at.wrapping_add(2);
            }
        }
        bus
    }

    fn mov_imm(v: u16, r: Reg) -> Instr {
        Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Imm(v),
            dst: Operand::Reg(r),
        }
    }

    #[test]
    fn block_ends_at_jump() {
        let bus = bus_with(
            &[
                mov_imm(0x1234, Reg::R12),
                mov_imm(5, Reg::R13),
                Instr::Jump { op: Opcode::Jmp, offset_words: -5 },
                mov_imm(7, Reg::R14),
            ],
            0x4000,
        );
        let b = build_block(&bus, 0x4000).unwrap();
        assert_eq!(b.instrs.len(), 3, "block stops after the jump");
        assert_eq!(b.start, 0x4000);
        // 2-word MOV + 1-word MOV (CG constant 5... actually #5 is not a CG
        // constant, so 2 words) + 1-word JMP.
        let total: u32 = b.instrs.iter().map(|d| 2 * u32::from(d.words)).sum();
        assert_eq!(b.end, u32::from(b.start) + total);
    }

    #[test]
    fn block_ends_at_pc_write() {
        let br = Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Imm(0x4100),
            dst: Operand::Reg(Reg::PC),
        };
        let bus = bus_with(&[mov_imm(1, Reg::R12), br, mov_imm(2, Reg::R13)], 0x4000);
        let b = build_block(&bus, 0x4000).unwrap();
        assert_eq!(b.instrs.len(), 2);
    }

    #[test]
    fn fram_block_plans_are_fram_fast_without_sanitizer() {
        let bus = bus_with(&[mov_imm(1, Reg::R12), Instr::Jump { op: Opcode::Jmp, offset_words: 0 }], 0x4000);
        let b = build_block(&bus, 0x4000).unwrap();
        assert!(b.instrs.iter().all(|d| d.plan == Plan::FramFast));
        assert!(b.instrs.iter().all(|d| d.cat == Category::AppFram));
    }

    #[test]
    fn sram_block_distinguishes_pure_and_fast() {
        let store = Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Reg(Reg::R12),
            dst: Operand::Absolute(0x2800),
        };
        let bus = bus_with(&[mov_imm(1, Reg::R12), store], 0x2000);
        let b = build_block(&bus, 0x2000).unwrap();
        assert_eq!(b.instrs[0].plan, Plan::SramPure);
        assert_eq!(b.instrs[1].plan, Plan::SramFast);
        assert!(b.instrs.iter().all(|d| d.cat == Category::AppSram));
    }

    #[test]
    fn tracked_unfilled_sram_forces_replay() {
        use crate::mem::AddrRange;
        use crate::sanitize::SanitizerConfig;
        let mut bus = Bus::new(MemoryMap::fr2355(), HwCache::fr2355(), Frequency::MHZ_8);
        bus.attach_sanitizer(SanitizerConfig {
            exec: vec![AddrRange::new(0x2800, 0x3000)],
            tracked: Some(AddrRange::new(0x2800, 0x3000)),
            ..SanitizerConfig::default()
        });
        // Write the instruction with poke (which marks bytes filled), then
        // check an adjacent unfilled address still decodes as Replay while
        // the filled one is eligible for the fast plan.
        let i = mov_imm(1, Reg::R12);
        let mut at = 0x2800u16;
        for w in i.encode(at).unwrap() {
            bus.poke_word(at, w);
            at = at.wrapping_add(2);
        }
        let b = build_block(&bus, 0x2800).unwrap();
        assert_eq!(b.instrs[0].plan, Plan::SramPure, "filled + exec range → skip");
        // 0x2900 was never written: every fetch must replay (and in fact
        // the bytes there are zero, which decode to a valid instruction).
        if let Some(b2) = build_block(&bus, 0x2900) {
            assert!(b2.instrs.iter().all(|d| d.plan == Plan::Replay));
        }
    }

    #[test]
    fn non_code_regions_do_not_build() {
        let bus = bus_with(&[], 0x4000);
        assert!(build_block(&bus, 0x0100).is_none(), "MMIO");
        assert!(build_block(&bus, 0x0F00).is_none(), "trap window");
        assert!(build_block(&bus, 0x0000).is_none(), "unmapped");
        assert!(build_block(&bus, 0x4001).is_none(), "odd PC");
    }
}
