//! Instruction-set definition for the simulated MSP430-class CPU.
//!
//! The simulator implements the classic 16-bit MSP430 instruction set:
//! twelve double-operand (format I) instructions, seven single-operand
//! (format II) instructions and eight relative jumps, with the seven
//! standard addressing modes and the R2/R3 constant generator.
//!
//! [`Instr`] is the decoded form; [`Instr::encode`] and [`Instr::decode`]
//! convert to and from the binary encoding stored in simulated memory.

use crate::error::{SimError, SimResult};
use std::fmt;

/// A CPU register, `R0`..`R15`.
///
/// `R0`..`R3` have dedicated roles: program counter, stack pointer, status
/// register and constant generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Program counter (`R0`).
    pub const PC: Reg = Reg(0);
    /// Stack pointer (`R1`).
    pub const SP: Reg = Reg(1);
    /// Status register / constant generator 1 (`R2`).
    pub const SR: Reg = Reg(2);
    /// Constant generator 2 (`R3`).
    pub const CG: Reg = Reg(3);
    /// First argument register under the MSP430 EABI.
    pub const R12: Reg = Reg(12);
    /// Second argument register under the MSP430 EABI.
    pub const R13: Reg = Reg(13);
    /// Third argument register under the MSP430 EABI.
    pub const R14: Reg = Reg(14);
    /// Fourth argument register under the MSP430 EABI.
    pub const R15: Reg = Reg(15);

    /// Creates a register from its number.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadRegister`] if `n > 15`.
    pub fn new(n: u8) -> SimResult<Reg> {
        if n > 15 {
            Err(SimError::BadRegister(n))
        } else {
            Ok(Reg(n))
        }
    }

    /// Creates a register without bounds checking the number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub fn r(n: u8) -> Reg {
        Reg::new(n).expect("register number must be 0..=15")
    }

    /// The register number, `0..=15`.
    pub fn num(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "PC"),
            1 => write!(f, "SP"),
            2 => write!(f, "SR"),
            3 => write!(f, "CG"),
            n => write!(f, "R{n}"),
        }
    }
}

/// Operation width: 16-bit word or 8-bit byte (`.B` suffix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Size {
    /// 16-bit operation (default).
    #[default]
    Word,
    /// 8-bit operation; register destinations clear their upper byte.
    Byte,
}

impl Size {
    /// Number of bytes moved by an access of this size.
    pub fn bytes(self) -> u16 {
        match self {
            Size::Word => 2,
            Size::Byte => 1,
        }
    }
}

/// Instruction mnemonic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // Format I (double operand).
    Mov,
    Add,
    Addc,
    Subc,
    Sub,
    Cmp,
    Dadd,
    Bit,
    Bic,
    Bis,
    Xor,
    And,
    // Format II (single operand).
    Rrc,
    Swpb,
    Rra,
    Sxt,
    Push,
    Call,
    Reti,
    // Jumps (PC-relative, ±511/512 words).
    Jnz,
    Jz,
    Jnc,
    Jc,
    Jn,
    Jge,
    Jl,
    Jmp,
}

impl Opcode {
    /// True for the twelve double-operand instructions.
    pub fn is_format_i(self) -> bool {
        matches!(
            self,
            Opcode::Mov
                | Opcode::Add
                | Opcode::Addc
                | Opcode::Subc
                | Opcode::Sub
                | Opcode::Cmp
                | Opcode::Dadd
                | Opcode::Bit
                | Opcode::Bic
                | Opcode::Bis
                | Opcode::Xor
                | Opcode::And
        )
    }

    /// True for the seven single-operand instructions.
    pub fn is_format_ii(self) -> bool {
        matches!(
            self,
            Opcode::Rrc
                | Opcode::Swpb
                | Opcode::Rra
                | Opcode::Sxt
                | Opcode::Push
                | Opcode::Call
                | Opcode::Reti
        )
    }

    /// True for the eight conditional/unconditional relative jumps.
    pub fn is_jump(self) -> bool {
        matches!(
            self,
            Opcode::Jnz
                | Opcode::Jz
                | Opcode::Jnc
                | Opcode::Jc
                | Opcode::Jn
                | Opcode::Jge
                | Opcode::Jl
                | Opcode::Jmp
        )
    }

    fn format_i_nibble(self) -> Option<u16> {
        Some(match self {
            Opcode::Mov => 0x4,
            Opcode::Add => 0x5,
            Opcode::Addc => 0x6,
            Opcode::Subc => 0x7,
            Opcode::Sub => 0x8,
            Opcode::Cmp => 0x9,
            Opcode::Dadd => 0xA,
            Opcode::Bit => 0xB,
            Opcode::Bic => 0xC,
            Opcode::Bis => 0xD,
            Opcode::Xor => 0xE,
            Opcode::And => 0xF,
            _ => return None,
        })
    }

    fn format_ii_code(self) -> Option<u16> {
        Some(match self {
            Opcode::Rrc => 0,
            Opcode::Swpb => 1,
            Opcode::Rra => 2,
            Opcode::Sxt => 3,
            Opcode::Push => 4,
            Opcode::Call => 5,
            Opcode::Reti => 6,
            _ => return None,
        })
    }

    fn jump_cond(self) -> Option<u16> {
        Some(match self {
            Opcode::Jnz => 0,
            Opcode::Jz => 1,
            Opcode::Jnc => 2,
            Opcode::Jc => 3,
            Opcode::Jn => 4,
            Opcode::Jge => 5,
            Opcode::Jl => 6,
            Opcode::Jmp => 7,
            _ => return None,
        })
    }

    /// The assembly mnemonic for this opcode, lower case.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Mov => "mov",
            Opcode::Add => "add",
            Opcode::Addc => "addc",
            Opcode::Subc => "subc",
            Opcode::Sub => "sub",
            Opcode::Cmp => "cmp",
            Opcode::Dadd => "dadd",
            Opcode::Bit => "bit",
            Opcode::Bic => "bic",
            Opcode::Bis => "bis",
            Opcode::Xor => "xor",
            Opcode::And => "and",
            Opcode::Rrc => "rrc",
            Opcode::Swpb => "swpb",
            Opcode::Rra => "rra",
            Opcode::Sxt => "sxt",
            Opcode::Push => "push",
            Opcode::Call => "call",
            Opcode::Reti => "reti",
            Opcode::Jnz => "jnz",
            Opcode::Jz => "jz",
            Opcode::Jnc => "jnc",
            Opcode::Jc => "jc",
            Opcode::Jn => "jn",
            Opcode::Jge => "jge",
            Opcode::Jl => "jl",
            Opcode::Jmp => "jmp",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An instruction operand in one of the seven MSP430 addressing modes.
///
/// `Symbolic` stores the *absolute target address*; the PC-relative offset
/// is computed at encode time from the instruction address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register direct, `Rn`.
    Reg(Reg),
    /// Indexed, `x(Rn)`.
    Indexed(u16, Reg),
    /// Symbolic (PC-relative), `ADDR`; stores the absolute target.
    Symbolic(u16),
    /// Absolute, `&ADDR`.
    Absolute(u16),
    /// Register indirect, `@Rn`.
    Indirect(Reg),
    /// Register indirect with auto-increment, `@Rn+`.
    IndirectInc(Reg),
    /// Immediate, `#n`. Encoded via the constant generator when possible.
    Imm(u16),
}

impl Operand {
    /// True if encoding this operand requires an extension word.
    pub fn needs_ext_word(&self) -> bool {
        match self {
            Operand::Reg(_) | Operand::Indirect(_) | Operand::IndirectInc(_) => false,
            Operand::Imm(v) => !is_cg_const(*v),
            Operand::Indexed(..) | Operand::Symbolic(_) | Operand::Absolute(_) => true,
        }
    }

    /// True if the operand is a memory-addressing mode (reads or writes
    /// memory when used as a source or destination).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Operand::Indexed(..)
                | Operand::Symbolic(_)
                | Operand::Absolute(_)
                | Operand::Indirect(_)
                | Operand::IndirectInc(_)
        )
    }

    /// The addressing mode of this operand.
    pub fn mode(&self) -> AddrMode {
        match self {
            Operand::Reg(_) => AddrMode::Register,
            Operand::Indexed(..) => AddrMode::Indexed,
            Operand::Symbolic(_) => AddrMode::Symbolic,
            Operand::Absolute(_) => AddrMode::Absolute,
            Operand::Indirect(_) => AddrMode::Indirect,
            Operand::IndirectInc(_) => AddrMode::IndirectInc,
            Operand::Imm(_) => AddrMode::Immediate,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Indexed(x, r) => write!(f, "{x}({r})"),
            Operand::Symbolic(a) => write!(f, "0x{a:04x}"),
            Operand::Absolute(a) => write!(f, "&0x{a:04x}"),
            Operand::Indirect(r) => write!(f, "@{r}"),
            Operand::IndirectInc(r) => write!(f, "@{r}+"),
            Operand::Imm(v) => write!(f, "#0x{v:04x}"),
        }
    }
}

/// Addressing-mode tag (see [`Operand::mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// `Rn`
    Register,
    /// `x(Rn)`
    Indexed,
    /// PC-relative `ADDR`
    Symbolic,
    /// `&ADDR`
    Absolute,
    /// `@Rn`
    Indirect,
    /// `@Rn+`
    IndirectInc,
    /// `#n`
    Immediate,
}

/// True if `v` is representable by the R2/R3 constant generator
/// (`-1, 0, 1, 2, 4, 8`) and therefore costs no extension word.
pub fn is_cg_const(v: u16) -> bool {
    matches!(v, 0 | 1 | 2 | 4 | 8 | 0xFFFF)
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Double-operand instruction: `op.size src, dst`.
    FormatI {
        /// The operation (must satisfy [`Opcode::is_format_i`]).
        op: Opcode,
        /// Operation width.
        size: Size,
        /// Source operand (any addressing mode).
        src: Operand,
        /// Destination operand (register, indexed, symbolic or absolute).
        dst: Operand,
    },
    /// Single-operand instruction: `op.size dst`. `RETI` has no operand and
    /// is represented with `dst = Operand::Reg(Reg::CG)` by convention.
    FormatII {
        /// The operation (must satisfy [`Opcode::is_format_ii`]).
        op: Opcode,
        /// Operation width (`SWPB`/`SXT`/`CALL` are word-only).
        size: Size,
        /// The single operand.
        dst: Operand,
    },
    /// PC-relative jump: `op offset` where the branch target is
    /// `addr + 2 + 2*offset_words`.
    Jump {
        /// The condition (must satisfy [`Opcode::is_jump`]).
        op: Opcode,
        /// Signed word offset, −512..=511.
        offset_words: i16,
    },
}

impl Instr {
    /// Total encoded length in bytes (2, 4 or 6).
    pub fn len_bytes(&self) -> u16 {
        2 + 2 * self.ext_word_count()
    }

    /// Number of extension words following the opcode word.
    pub fn ext_word_count(&self) -> u16 {
        match self {
            Instr::FormatI { src, dst, .. } => {
                u16::from(src.needs_ext_word()) + u16::from(dst.needs_ext_word())
            }
            Instr::FormatII { op: Opcode::Reti, .. } => 0,
            Instr::FormatII { dst, .. } => u16::from(dst.needs_ext_word()),
            Instr::Jump { .. } => 0,
        }
    }

    /// The branch target of a [`Instr::Jump`] placed at `addr`.
    pub fn jump_target(&self, addr: u16) -> Option<u16> {
        match self {
            Instr::Jump { offset_words, .. } => {
                Some(addr.wrapping_add(2).wrapping_add((*offset_words as u16).wrapping_mul(2)))
            }
            _ => None,
        }
    }

    /// Encodes the instruction placed at address `at` into 1–3 words.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadEncoding`] for ill-formed combinations such as
    /// an immediate destination or a jump offset out of range.
    pub fn encode(&self, at: u16) -> SimResult<Vec<u16>> {
        self.encode_opts(at, false)
    }

    /// Like [`Instr::encode`], but when `force_imm_ext` is set, immediate
    /// source operands are always encoded as a `@PC+` extension word even
    /// if the value is representable by the constant generator.
    ///
    /// Assemblers need this for immediates written as symbolic expressions:
    /// the operand size must be fixed before the symbol value is known.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Instr::encode`].
    pub fn encode_opts(&self, at: u16, force_imm_ext: bool) -> SimResult<Vec<u16>> {
        match *self {
            Instr::FormatI { op, size, src, dst } => {
                let nib = op
                    .format_i_nibble()
                    .ok_or_else(|| SimError::BadEncoding(format!("{op} is not format I")))?;
                let mut words = vec![0u16];
                let (sreg, sas) = encode_src_opts(src, at, &mut words, force_imm_ext)?;
                let (dreg, dad) = encode_dst(dst, at, &mut words)?;
                let bw = matches!(size, Size::Byte) as u16;
                words[0] = (nib << 12)
                    | (u16::from(sreg.num()) << 8)
                    | (dad << 7)
                    | (bw << 6)
                    | (sas << 4)
                    | u16::from(dreg.num());
                Ok(words)
            }
            Instr::FormatII { op, size, dst } => {
                let code = op
                    .format_ii_code()
                    .ok_or_else(|| SimError::BadEncoding(format!("{op} is not format II")))?;
                if matches!(op, Opcode::Reti) {
                    return Ok(vec![0x1300]);
                }
                if matches!(op, Opcode::Swpb | Opcode::Sxt | Opcode::Call)
                    && matches!(size, Size::Byte)
                {
                    return Err(SimError::BadEncoding(format!("{op} has no byte form")));
                }
                let mut words = vec![0u16];
                let (reg, amode) = encode_src_opts(dst, at, &mut words, force_imm_ext)?;
                let bw = matches!(size, Size::Byte) as u16;
                words[0] = 0x1000 | (code << 7) | (bw << 6) | (amode << 4) | u16::from(reg.num());
                Ok(words)
            }
            Instr::Jump { op, offset_words } => {
                let cond = op
                    .jump_cond()
                    .ok_or_else(|| SimError::BadEncoding(format!("{op} is not a jump")))?;
                if !(-512..=511).contains(&offset_words) {
                    return Err(SimError::BadEncoding(format!(
                        "jump offset {offset_words} words out of range"
                    )));
                }
                Ok(vec![0x2000 | (cond << 10) | ((offset_words as u16) & 0x3FF)])
            }
        }
    }

    /// Decodes the instruction at `at` from `words` (opcode word followed by
    /// up to two extension words; extra words are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadEncoding`] if the opcode word is not a valid
    /// instruction or not enough extension words are supplied.
    pub fn decode(words: &[u16], at: u16) -> SimResult<Instr> {
        let w = *words.first().ok_or_else(|| SimError::BadEncoding("empty".into()))?;
        match w >> 13 {
            0 => {
                // Format II block is 0x1000..=0x13FF.
                if w & 0xF000 != 0x1000 {
                    return Err(SimError::BadEncoding(format!("invalid opcode word {w:#06x}")));
                }
                let code = (w >> 7) & 0x7;
                let op = match code {
                    0 => Opcode::Rrc,
                    1 => Opcode::Swpb,
                    2 => Opcode::Rra,
                    3 => Opcode::Sxt,
                    4 => Opcode::Push,
                    5 => Opcode::Call,
                    6 => Opcode::Reti,
                    _ => return Err(SimError::BadEncoding(format!("invalid format II {w:#06x}"))),
                };
                if matches!(op, Opcode::Reti) {
                    return Ok(Instr::FormatII { op, size: Size::Word, dst: Operand::Reg(Reg::CG) });
                }
                let size = if w & 0x40 != 0 { Size::Byte } else { Size::Word };
                let amode = (w >> 4) & 0x3;
                let reg = Reg::r((w & 0xF) as u8);
                let mut idx = 1;
                let dst = decode_src(reg, amode, words, &mut idx, at)?;
                Ok(Instr::FormatII { op, size, dst })
            }
            1 => {
                let cond = (w >> 10) & 0x7;
                let op = match cond {
                    0 => Opcode::Jnz,
                    1 => Opcode::Jz,
                    2 => Opcode::Jnc,
                    3 => Opcode::Jc,
                    4 => Opcode::Jn,
                    5 => Opcode::Jge,
                    6 => Opcode::Jl,
                    _ => Opcode::Jmp,
                };
                let raw = w & 0x3FF;
                let offset_words = if raw & 0x200 != 0 {
                    (raw | 0xFC00) as i16
                } else {
                    raw as i16
                };
                Ok(Instr::Jump { op, offset_words })
            }
            _ => {
                let nib = w >> 12;
                let op = match nib {
                    0x4 => Opcode::Mov,
                    0x5 => Opcode::Add,
                    0x6 => Opcode::Addc,
                    0x7 => Opcode::Subc,
                    0x8 => Opcode::Sub,
                    0x9 => Opcode::Cmp,
                    0xA => Opcode::Dadd,
                    0xB => Opcode::Bit,
                    0xC => Opcode::Bic,
                    0xD => Opcode::Bis,
                    0xE => Opcode::Xor,
                    0xF => Opcode::And,
                    _ => return Err(SimError::BadEncoding(format!("invalid opcode {w:#06x}"))),
                };
                let sreg = Reg::r(((w >> 8) & 0xF) as u8);
                let sas = (w >> 4) & 0x3;
                let dreg = Reg::r((w & 0xF) as u8);
                let dad = (w >> 7) & 0x1;
                let size = if w & 0x40 != 0 { Size::Byte } else { Size::Word };
                let mut idx = 1;
                let src = decode_src(sreg, sas, words, &mut idx, at)?;
                let dst = decode_dst(dreg, dad, words, &mut idx, at)?;
                Ok(Instr::FormatI { op, size, src, dst })
            }
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::FormatI { op, size, src, dst } => {
                let suffix = if matches!(size, Size::Byte) { ".b" } else { "" };
                write!(f, "{op}{suffix} {src}, {dst}")
            }
            Instr::FormatII { op: Opcode::Reti, .. } => write!(f, "reti"),
            Instr::FormatII { op, size, dst } => {
                let suffix = if matches!(size, Size::Byte) { ".b" } else { "" };
                write!(f, "{op}{suffix} {dst}")
            }
            Instr::Jump { op, offset_words } => write!(f, "{op} {offset_words:+}"),
        }
    }
}

/// Encodes a source-position operand (also used for format II operands).
/// Appends extension words to `words` and returns `(register, As bits)`.
fn encode_src_opts(
    op: Operand,
    at: u16,
    words: &mut Vec<u16>,
    force_imm_ext: bool,
) -> SimResult<(Reg, u16)> {
    if force_imm_ext {
        if let Operand::Imm(v) = op {
            words.push(v);
            return Ok((Reg::PC, 3));
        }
    }
    Ok(match op {
        Operand::Reg(r) => (r, 0),
        Operand::Indexed(x, r) => {
            if matches!(r, Reg::SR | Reg::CG) {
                return Err(SimError::BadEncoding("cannot index R2/R3".into()));
            }
            words.push(x);
            (r, 1)
        }
        Operand::Symbolic(target) => {
            // Offset is relative to the address of the extension word.
            let ext_addr = at.wrapping_add(2 * words.len() as u16);
            words.push(target.wrapping_sub(ext_addr));
            (Reg::PC, 1)
        }
        Operand::Absolute(a) => {
            words.push(a);
            (Reg::SR, 1)
        }
        Operand::Indirect(r) => (r, 2),
        Operand::IndirectInc(r) => (r, 3),
        Operand::Imm(v) => match v {
            0 => (Reg::CG, 0),
            1 => (Reg::CG, 1),
            2 => (Reg::CG, 2),
            0xFFFF => (Reg::CG, 3),
            4 => (Reg::SR, 2),
            8 => (Reg::SR, 3),
            _ => {
                words.push(v);
                (Reg::PC, 3)
            }
        },
    })
}

/// Encodes a destination operand. Returns `(register, Ad bit)`.
fn encode_dst(op: Operand, at: u16, words: &mut Vec<u16>) -> SimResult<(Reg, u16)> {
    Ok(match op {
        Operand::Reg(r) => (r, 0),
        Operand::Indexed(x, r) => {
            words.push(x);
            (r, 1)
        }
        Operand::Symbolic(target) => {
            let ext_addr = at.wrapping_add(2 * words.len() as u16);
            words.push(target.wrapping_sub(ext_addr));
            (Reg::PC, 1)
        }
        Operand::Absolute(a) => {
            words.push(a);
            (Reg::SR, 1)
        }
        other => {
            return Err(SimError::BadEncoding(format!(
                "operand {other} not valid as destination"
            )))
        }
    })
}

/// Decodes a source-position operand given `(register, As bits)`.
fn decode_src(reg: Reg, amode: u16, words: &[u16], idx: &mut usize, at: u16) -> SimResult<Operand> {
    let take_ext = |idx: &mut usize| -> SimResult<(u16, u16)> {
        let w = *words
            .get(*idx)
            .ok_or_else(|| SimError::BadEncoding("missing extension word".into()))?;
        let ext_addr = at.wrapping_add(2 * (*idx as u16));
        *idx += 1;
        Ok((w, ext_addr))
    };
    Ok(match (reg, amode) {
        (Reg::CG, 0) => Operand::Imm(0),
        (Reg::CG, 1) => Operand::Imm(1),
        (Reg::CG, 2) => Operand::Imm(2),
        (Reg::CG, 3) => Operand::Imm(0xFFFF),
        (Reg::SR, 2) => Operand::Imm(4),
        (Reg::SR, 3) => Operand::Imm(8),
        (Reg::SR, 1) => {
            let (w, _) = take_ext(idx)?;
            Operand::Absolute(w)
        }
        (Reg::PC, 1) => {
            let (w, ext_addr) = take_ext(idx)?;
            Operand::Symbolic(ext_addr.wrapping_add(w))
        }
        (Reg::PC, 3) => {
            let (w, _) = take_ext(idx)?;
            Operand::Imm(w)
        }
        (r, 0) => Operand::Reg(r),
        (r, 1) => {
            let (w, _) = take_ext(idx)?;
            Operand::Indexed(w, r)
        }
        (r, 2) => Operand::Indirect(r),
        (r, 3) => Operand::IndirectInc(r),
        _ => return Err(SimError::BadEncoding(format!("invalid As={amode}"))),
    })
}

/// Decodes a destination operand given `(register, Ad bit)`.
fn decode_dst(reg: Reg, ad: u16, words: &[u16], idx: &mut usize, at: u16) -> SimResult<Operand> {
    if ad == 0 {
        return Ok(Operand::Reg(reg));
    }
    let w = *words
        .get(*idx)
        .ok_or_else(|| SimError::BadEncoding("missing extension word".into()))?;
    let ext_addr = at.wrapping_add(2 * (*idx as u16));
    *idx += 1;
    Ok(match reg {
        Reg::SR => Operand::Absolute(w),
        Reg::PC => Operand::Symbolic(ext_addr.wrapping_add(w)),
        r => Operand::Indexed(w, r),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr, at: u16) {
        let words = i.encode(at).expect("encode");
        let back = Instr::decode(&words, at).expect("decode");
        assert_eq!(i, back, "roundtrip at {at:#06x}: words {words:x?}");
        assert_eq!(words.len() as u16 * 2, i.len_bytes());
    }

    #[test]
    fn format_i_register_register() {
        roundtrip(
            Instr::FormatI {
                op: Opcode::Mov,
                size: Size::Word,
                src: Operand::Reg(Reg::R12),
                dst: Operand::Reg(Reg::R13),
            },
            0x4000,
        );
    }

    #[test]
    fn format_i_all_src_modes() {
        for src in [
            Operand::Reg(Reg::r(5)),
            Operand::Indexed(0x20, Reg::r(6)),
            Operand::Symbolic(0x4100),
            Operand::Absolute(0x2000),
            Operand::Indirect(Reg::r(7)),
            Operand::IndirectInc(Reg::r(8)),
            Operand::Imm(0x1234),
            Operand::Imm(0),
            Operand::Imm(1),
            Operand::Imm(2),
            Operand::Imm(4),
            Operand::Imm(8),
            Operand::Imm(0xFFFF),
        ] {
            roundtrip(
                Instr::FormatI { op: Opcode::Add, size: Size::Word, src, dst: Operand::Reg(Reg::R12) },
                0x4000,
            );
        }
    }

    #[test]
    fn format_i_all_dst_modes() {
        for dst in [
            Operand::Reg(Reg::r(5)),
            Operand::Indexed(0x20, Reg::r(6)),
            Operand::Symbolic(0x4100),
            Operand::Absolute(0x2000),
        ] {
            roundtrip(
                Instr::FormatI {
                    op: Opcode::Xor,
                    size: Size::Byte,
                    src: Operand::Imm(0x55),
                    dst,
                },
                0x4000,
            );
        }
    }

    #[test]
    fn cg_constants_cost_no_ext_word() {
        for v in [0u16, 1, 2, 4, 8, 0xFFFF] {
            let i = Instr::FormatI {
                op: Opcode::Mov,
                size: Size::Word,
                src: Operand::Imm(v),
                dst: Operand::Reg(Reg::R12),
            };
            assert_eq!(i.len_bytes(), 2, "constant {v:#x} should use the constant generator");
        }
        let i = Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Imm(3),
            dst: Operand::Reg(Reg::R12),
        };
        assert_eq!(i.len_bytes(), 4);
    }

    #[test]
    fn format_ii_roundtrip() {
        for op in [Opcode::Rrc, Opcode::Swpb, Opcode::Rra, Opcode::Sxt, Opcode::Push, Opcode::Call] {
            let size = Size::Word;
            for dst in [
                Operand::Reg(Reg::r(9)),
                Operand::Indexed(4, Reg::r(10)),
                Operand::Absolute(0x2100),
                Operand::Indirect(Reg::r(11)),
                Operand::IndirectInc(Reg::SP),
                Operand::Imm(0x4444),
            ] {
                roundtrip(Instr::FormatII { op, size, dst }, 0x8000);
            }
        }
    }

    #[test]
    fn reti_roundtrip() {
        let words = Instr::FormatII {
            op: Opcode::Reti,
            size: Size::Word,
            dst: Operand::Reg(Reg::CG),
        }
        .encode(0x4000)
        .unwrap();
        assert_eq!(words, vec![0x1300]);
        let back = Instr::decode(&words, 0x4000).unwrap();
        assert!(matches!(back, Instr::FormatII { op: Opcode::Reti, .. }));
    }

    #[test]
    fn jump_roundtrip_and_target() {
        for (op, off) in [
            (Opcode::Jmp, 0i16),
            (Opcode::Jz, -1),
            (Opcode::Jnz, 5),
            (Opcode::Jc, 511),
            (Opcode::Jnc, -512),
            (Opcode::Jge, 100),
            (Opcode::Jl, -100),
            (Opcode::Jn, 3),
        ] {
            let i = Instr::Jump { op, offset_words: off };
            roundtrip(i, 0x4000);
            assert_eq!(
                i.jump_target(0x4000),
                Some(0x4002u16.wrapping_add((off as u16).wrapping_mul(2)))
            );
        }
    }

    #[test]
    fn jump_out_of_range_rejected() {
        let i = Instr::Jump { op: Opcode::Jmp, offset_words: 512 };
        assert!(i.encode(0x4000).is_err());
        let i = Instr::Jump { op: Opcode::Jmp, offset_words: -513 };
        assert!(i.encode(0x4000).is_err());
    }

    #[test]
    fn symbolic_encoding_is_pc_relative() {
        let i = Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Symbolic(0x4100),
            dst: Operand::Reg(Reg::R12),
        };
        let w1 = i.encode(0x4000).unwrap();
        let w2 = i.encode(0x4050).unwrap();
        // Same target from different addresses => different offsets.
        assert_ne!(w1[1], w2[1]);
        assert_eq!(Instr::decode(&w1, 0x4000).unwrap(), i);
        assert_eq!(Instr::decode(&w2, 0x4050).unwrap(), i);
    }

    #[test]
    fn immediate_destination_rejected() {
        let i = Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Reg(Reg::R12),
            dst: Operand::Imm(5),
        };
        assert!(i.encode(0x4000).is_err());
    }

    #[test]
    fn byte_form_of_call_rejected() {
        let i = Instr::FormatII { op: Opcode::Call, size: Size::Byte, dst: Operand::Reg(Reg::R12) };
        assert!(i.encode(0x4000).is_err());
    }
}
