//! Deterministic fault injection: power-loss and bit-flip schedules.
//!
//! NVRAM systems must survive arbitrary interruption — after a power loss
//! the FRAM survives but SRAM and the register file do not, so any
//! FRAM-resident state that points into SRAM (like SwapRAM's redirection
//! words) becomes a wild-jump hazard on the next boot. This module models
//! the adversary: a [`FaultPlan`] is a cycle-ordered schedule of
//! [`FaultEvent`]s, either generated explicitly or drawn from the seeded
//! [`SplitMix64`](crate::rng::SplitMix64) generator so every fault run is
//! reproducible by construction.
//!
//! The plan attaches to a [`Machine`](crate::machine::Machine); events
//! whose cycle has been reached fire between instructions. A
//! [`FaultKind::PowerLoss`] ends the run with
//! [`ExitReason::PowerLoss`](crate::machine::ExitReason::PowerLoss) — the
//! driver then calls
//! [`Machine::power_cycle`](crate::machine::Machine::power_cycle) (SRAM
//! and registers cleared, FRAM persistent) and resumes. A
//! [`FaultKind::BitFlip`] silently corrupts one bit of backing memory, the
//! way a marginal write or a particle strike would; flips in FRAM also
//! invalidate the hardware read-cache line so the corruption is visible.
//!
//! Cycle counts are *cumulative* across power cycles (the machine's
//! statistics survive a reboot — they model the experimenter's bench
//! clock, not on-chip state), so a schedule of increasing cycle numbers
//! interrupts successive boots.

use crate::rng::SplitMix64;

/// What a scheduled fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Supply failure: volatile state (SRAM, registers, hardware cache,
    /// I/O ports) is lost; FRAM persists.
    PowerLoss,
    /// A single-bit corruption of backing memory at `addr`, bit `bit`
    /// (0–7).
    BitFlip {
        /// Byte address of the corruption.
        addr: u16,
        /// Bit index within the byte.
        bit: u8,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cumulative machine cycle at (or after) which the fault fires.
    pub cycle: u64,
    /// The fault itself.
    pub kind: FaultKind,
}

/// A cycle-ordered schedule of faults with a firing cursor.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    next: usize,
}

impl FaultPlan {
    /// Creates a plan from explicit events (sorted by cycle internally;
    /// ties fire in the given order).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.cycle);
        FaultPlan { events, next: 0 }
    }

    /// A schedule of `count` power losses drawn uniformly from
    /// `window.clone()` (cumulative cycles) using the seeded generator.
    /// The draws are deduplicated and sorted, so the plan may hold fewer
    /// than `count` events for tiny windows.
    pub fn power_losses(seed: u64, count: usize, window: std::ops::Range<u64>) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let span = (window.end - window.start).max(1);
        let mut cycles: Vec<u64> =
            (0..count).map(|_| window.start + rng.below(span)).collect();
        cycles.sort_unstable();
        cycles.dedup();
        FaultPlan::new(
            cycles.into_iter().map(|cycle| FaultEvent { cycle, kind: FaultKind::PowerLoss }).collect(),
        )
    }

    /// A schedule of `count` single-bit flips at cycles in `window`,
    /// targeting byte addresses in `addrs` (seeded, reproducible).
    pub fn bit_flips(
        seed: u64,
        count: usize,
        window: std::ops::Range<u64>,
        addrs: std::ops::Range<u16>,
    ) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let span = (window.end - window.start).max(1);
        let aspan = u64::from(addrs.end - addrs.start).max(1);
        FaultPlan::new(
            (0..count)
                .map(|_| FaultEvent {
                    cycle: window.start + rng.below(span),
                    kind: FaultKind::BitFlip {
                        addr: addrs.start + rng.below(aspan) as u16,
                        bit: (rng.below(8)) as u8,
                    },
                })
                .collect(),
        )
    }

    /// All events, fired or not, in schedule order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events that have not fired yet.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Events already fired.
    pub fn fired(&self) -> usize {
        self.next
    }

    /// Takes the next event due at or before `cycle`, advancing the
    /// cursor. Returns `None` when nothing is due.
    pub fn take_due(&mut self, cycle: u64) -> Option<FaultEvent> {
        let ev = *self.events.get(self.next)?;
        if ev.cycle <= cycle {
            self.next += 1;
            Some(ev)
        } else {
            None
        }
    }
}

/// The qualitative shape of a harvested-energy supply.
///
/// Each shape maps a mean per-boot energy budget (expressed in machine
/// cycles the stored charge can power) to a sequence of *on-durations*:
/// how long each boot lasts before the supply browns out again. All
/// arithmetic is integer-only so traces are bit-identical across hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnergyShape {
    /// Capacitor charged through a resistor from a steady source: the
    /// device wakes at a fixed threshold, so on-durations cluster around
    /// the budget — uniform in `[budget/2, 3*budget/2)`.
    RcCharge,
    /// Photovoltaic harvesting under a diurnal envelope: on-durations
    /// sweep from near-dark to full sun and back over a 16-boot period,
    /// with small per-boot jitter.
    Solar,
    /// Ambient-RF harvesting: mostly starvation-length bursts with an
    /// occasional long window when a transmitter keys up nearby.
    Rf,
    /// Playback of a recorded profile: each entry is an on-duration in
    /// permille of the budget, cycled for as long as the trace runs.
    Recorded(Vec<u16>),
}

/// Diurnal envelope for [`EnergyShape::Solar`], in permille of the
/// budget, one entry per boot over a 16-boot "day".
const SOLAR_ENVELOPE: [u64; 16] =
    [20, 80, 220, 450, 700, 900, 980, 1000, 950, 820, 620, 400, 220, 100, 40, 10];

/// A recorded harvested-energy profile (permille of budget per boot),
/// shaped after a bursty indoor-light logger trace: long stable stretches
/// punctuated by occlusions and brief strong spikes.
pub const RECORDED_PROFILE: [u16; 24] = [
    940, 980, 900, 120, 60, 40, 850, 910, 990, 1010, 300, 80, //
    70, 620, 880, 1040, 950, 200, 50, 40, 760, 890, 970, 1000,
];

/// A seeded harvested-energy trace: turns an energy budget into a dense
/// [`FaultPlan`] of power losses, one per brown-out.
///
/// Unlike [`FaultPlan::power_losses`], which scatters a fixed number of
/// losses over a window, an `EnergyTrace` models the *supply*: boot `k`
/// gets [`on_duration(k)`](EnergyTrace::on_duration) cycles of charge and
/// then the power fails, for as long as the schedule horizon lasts. The
/// per-boot durations are derived from `(seed, k)` independently, so the
/// trace is random-access and two generators with the same parameters
/// agree on every boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnergyTrace {
    shape: EnergyShape,
    budget: u64,
    seed: u64,
}

impl EnergyTrace {
    /// Minimum on-duration in cycles: real regulators hold the rail for
    /// at least a few instructions past the wake threshold, and a zero
    /// duration would stall the cumulative schedule.
    pub const MIN_ON_CYCLES: u64 = 32;

    /// Creates a trace with a mean per-boot budget of `budget` cycles.
    pub fn new(shape: EnergyShape, budget: u64, seed: u64) -> EnergyTrace {
        EnergyTrace { shape, budget: budget.max(Self::MIN_ON_CYCLES), seed }
    }

    /// The shape this trace draws from.
    pub fn shape(&self) -> &EnergyShape {
        &self.shape
    }

    /// Mean per-boot energy budget, in cycles.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// On-duration of boot `k`, in cycles (deterministic in `(seed, k)`).
    pub fn on_duration(&self, k: u64) -> u64 {
        // Each boot gets its own generator stream so durations are
        // random-access (the golden-ratio multiplier decorrelates
        // neighbouring boot indices before seeding).
        let mut rng = SplitMix64::new(self.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let b = self.budget;
        let d = match &self.shape {
            EnergyShape::RcCharge => b / 2 + rng.below(b.max(1)),
            EnergyShape::Solar => {
                let env = SOLAR_ENVELOPE[(k % 16) as usize];
                let jitter = rng.below((b / 8).max(1));
                b * env / 1000 + jitter
            }
            EnergyShape::Rf => {
                if rng.below(4) == 0 {
                    // Transmitter nearby: a long harvesting window.
                    b * 2 + rng.below((b * 3).max(1))
                } else {
                    b / 8 + rng.below((b / 3).max(1))
                }
            }
            EnergyShape::Recorded(profile) => {
                if profile.is_empty() {
                    b
                } else {
                    let permille = u64::from(profile[(k % profile.len() as u64) as usize]);
                    b * permille / 1000
                }
            }
        };
        d.max(Self::MIN_ON_CYCLES)
    }

    /// The first `n` on-durations, in boot order.
    pub fn durations(&self, n: u64) -> Vec<u64> {
        (0..n).map(|k| self.on_duration(k)).collect()
    }

    /// Builds the power-loss schedule covering cumulative machine cycles
    /// `[0, horizon)`: a loss at the end of every boot's on-duration, for
    /// as long as the prefix sum stays below the horizon. The supply
    /// never relents within the horizon — there is no trailing
    /// free-power window, unlike a fixed-count schedule.
    pub fn plan_until(&self, horizon: u64) -> FaultPlan {
        let mut events = Vec::new();
        let mut t = 0u64;
        for k in 0.. {
            t = t.saturating_add(self.on_duration(k));
            if t >= horizon {
                break;
            }
            events.push(FaultEvent { cycle: t, kind: FaultKind::PowerLoss });
        }
        FaultPlan::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_cycle_order() {
        let mut p = FaultPlan::new(vec![
            FaultEvent { cycle: 50, kind: FaultKind::PowerLoss },
            FaultEvent { cycle: 10, kind: FaultKind::BitFlip { addr: 0x2000, bit: 3 } },
        ]);
        assert_eq!(p.remaining(), 2);
        assert_eq!(p.take_due(5), None);
        let first = p.take_due(20).unwrap();
        assert_eq!(first.cycle, 10);
        assert_eq!(p.take_due(20), None, "second event not due yet");
        assert_eq!(p.take_due(50).unwrap().kind, FaultKind::PowerLoss);
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let a = FaultPlan::power_losses(9, 4, 100..10_000);
        let b = FaultPlan::power_losses(9, 4, 100..10_000);
        let c = FaultPlan::power_losses(10, 4, 100..10_000);
        assert_eq!(a.events(), b.events());
        assert_ne!(a.events(), c.events());
        assert!(a.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(a.events().iter().all(|e| (100..10_000).contains(&e.cycle)));
    }

    #[test]
    fn energy_traces_are_deterministic_and_random_access() {
        for shape in [
            EnergyShape::RcCharge,
            EnergyShape::Solar,
            EnergyShape::Rf,
            EnergyShape::Recorded(RECORDED_PROFILE.to_vec()),
        ] {
            let a = EnergyTrace::new(shape.clone(), 10_000, 7);
            let b = EnergyTrace::new(shape.clone(), 10_000, 7);
            let c = EnergyTrace::new(shape.clone(), 10_000, 8);
            assert_eq!(a.durations(64), b.durations(64), "{shape:?}");
            if !matches!(shape, EnergyShape::Recorded(_) | EnergyShape::Solar) {
                // Jitter-free playback shapes may coincide across seeds.
                assert_ne!(a.durations(64), c.durations(64), "{shape:?}");
            }
            // Random access agrees with sequential enumeration.
            assert_eq!(a.on_duration(17), a.durations(18)[17], "{shape:?}");
            assert!(a.durations(64).iter().all(|&d| d >= EnergyTrace::MIN_ON_CYCLES));
        }
    }

    #[test]
    fn energy_plans_cover_the_horizon_densely() {
        let trace = EnergyTrace::new(EnergyShape::RcCharge, 5_000, 3);
        let plan = trace.plan_until(200_000);
        assert!(!plan.events().is_empty());
        // Every event is a power loss, strictly inside the horizon, with
        // strictly increasing cumulative cycles.
        let mut prev = 0;
        for e in plan.events() {
            assert_eq!(e.kind, FaultKind::PowerLoss);
            assert!(e.cycle < 200_000);
            assert!(e.cycle > prev);
            prev = e.cycle;
        }
        // Mean spacing tracks the budget: ~40 losses over 200k cycles.
        assert!(plan.events().len() >= 25 && plan.events().len() <= 55, "{}", plan.events().len());
        // No trailing free-power window: the last loss lies within one
        // maximum on-duration of the horizon.
        assert!(plan.events().last().unwrap().cycle >= 200_000 - 3 * 5_000 / 2 - 1);
    }

    #[test]
    fn solar_trace_follows_the_diurnal_envelope() {
        let trace = EnergyTrace::new(EnergyShape::Solar, 8_000, 11);
        let d = trace.durations(16);
        // Noon (index 7) must dwarf midnight (index 15).
        assert!(d[7] > 4 * d[15], "noon {} vs midnight {}", d[7], d[15]);
    }

    #[test]
    fn bit_flip_schedules_target_requested_range() {
        let p = FaultPlan::bit_flips(3, 16, 0..1000, 0x4000..0x4100);
        assert_eq!(p.events().len(), 16);
        for e in p.events() {
            match e.kind {
                FaultKind::BitFlip { addr, bit } => {
                    assert!((0x4000..0x4100).contains(&addr));
                    assert!(bit < 8);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
