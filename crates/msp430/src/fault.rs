//! Deterministic fault injection: power-loss and bit-flip schedules.
//!
//! NVRAM systems must survive arbitrary interruption — after a power loss
//! the FRAM survives but SRAM and the register file do not, so any
//! FRAM-resident state that points into SRAM (like SwapRAM's redirection
//! words) becomes a wild-jump hazard on the next boot. This module models
//! the adversary: a [`FaultPlan`] is a cycle-ordered schedule of
//! [`FaultEvent`]s, either generated explicitly or drawn from the seeded
//! [`SplitMix64`](crate::rng::SplitMix64) generator so every fault run is
//! reproducible by construction.
//!
//! The plan attaches to a [`Machine`](crate::machine::Machine); events
//! whose cycle has been reached fire between instructions. A
//! [`FaultKind::PowerLoss`] ends the run with
//! [`ExitReason::PowerLoss`](crate::machine::ExitReason::PowerLoss) — the
//! driver then calls
//! [`Machine::power_cycle`](crate::machine::Machine::power_cycle) (SRAM
//! and registers cleared, FRAM persistent) and resumes. A
//! [`FaultKind::BitFlip`] silently corrupts one bit of backing memory, the
//! way a marginal write or a particle strike would; flips in FRAM also
//! invalidate the hardware read-cache line so the corruption is visible.
//!
//! Cycle counts are *cumulative* across power cycles (the machine's
//! statistics survive a reboot — they model the experimenter's bench
//! clock, not on-chip state), so a schedule of increasing cycle numbers
//! interrupts successive boots.

use crate::rng::SplitMix64;

/// What a scheduled fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Supply failure: volatile state (SRAM, registers, hardware cache,
    /// I/O ports) is lost; FRAM persists.
    PowerLoss,
    /// A single-bit corruption of backing memory at `addr`, bit `bit`
    /// (0–7).
    BitFlip {
        /// Byte address of the corruption.
        addr: u16,
        /// Bit index within the byte.
        bit: u8,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cumulative machine cycle at (or after) which the fault fires.
    pub cycle: u64,
    /// The fault itself.
    pub kind: FaultKind,
}

/// A cycle-ordered schedule of faults with a firing cursor.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    next: usize,
}

impl FaultPlan {
    /// Creates a plan from explicit events (sorted by cycle internally;
    /// ties fire in the given order).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.cycle);
        FaultPlan { events, next: 0 }
    }

    /// A schedule of `count` power losses drawn uniformly from
    /// `window.clone()` (cumulative cycles) using the seeded generator.
    /// The draws are deduplicated and sorted, so the plan may hold fewer
    /// than `count` events for tiny windows.
    pub fn power_losses(seed: u64, count: usize, window: std::ops::Range<u64>) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let span = (window.end - window.start).max(1);
        let mut cycles: Vec<u64> =
            (0..count).map(|_| window.start + rng.below(span)).collect();
        cycles.sort_unstable();
        cycles.dedup();
        FaultPlan::new(
            cycles.into_iter().map(|cycle| FaultEvent { cycle, kind: FaultKind::PowerLoss }).collect(),
        )
    }

    /// A schedule of `count` single-bit flips at cycles in `window`,
    /// targeting byte addresses in `addrs` (seeded, reproducible).
    pub fn bit_flips(
        seed: u64,
        count: usize,
        window: std::ops::Range<u64>,
        addrs: std::ops::Range<u16>,
    ) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let span = (window.end - window.start).max(1);
        let aspan = u64::from(addrs.end - addrs.start).max(1);
        FaultPlan::new(
            (0..count)
                .map(|_| FaultEvent {
                    cycle: window.start + rng.below(span),
                    kind: FaultKind::BitFlip {
                        addr: addrs.start + rng.below(aspan) as u16,
                        bit: (rng.below(8)) as u8,
                    },
                })
                .collect(),
        )
    }

    /// All events, fired or not, in schedule order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events that have not fired yet.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Events already fired.
    pub fn fired(&self) -> usize {
        self.next
    }

    /// Takes the next event due at or before `cycle`, advancing the
    /// cursor. Returns `None` when nothing is due.
    pub fn take_due(&mut self, cycle: u64) -> Option<FaultEvent> {
        let ev = *self.events.get(self.next)?;
        if ev.cycle <= cycle {
            self.next += 1;
            Some(ev)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_cycle_order() {
        let mut p = FaultPlan::new(vec![
            FaultEvent { cycle: 50, kind: FaultKind::PowerLoss },
            FaultEvent { cycle: 10, kind: FaultKind::BitFlip { addr: 0x2000, bit: 3 } },
        ]);
        assert_eq!(p.remaining(), 2);
        assert_eq!(p.take_due(5), None);
        let first = p.take_due(20).unwrap();
        assert_eq!(first.cycle, 10);
        assert_eq!(p.take_due(20), None, "second event not due yet");
        assert_eq!(p.take_due(50).unwrap().kind, FaultKind::PowerLoss);
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let a = FaultPlan::power_losses(9, 4, 100..10_000);
        let b = FaultPlan::power_losses(9, 4, 100..10_000);
        let c = FaultPlan::power_losses(10, 4, 100..10_000);
        assert_eq!(a.events(), b.events());
        assert_ne!(a.events(), c.events());
        assert!(a.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(a.events().iter().all(|e| (100..10_000).contains(&e.cycle)));
    }

    #[test]
    fn bit_flip_schedules_target_requested_range() {
        let p = FaultPlan::bit_flips(3, 16, 0..1000, 0x4000..0x4100);
        assert_eq!(p.events().len(), 16);
        for e in p.events() {
            match e.kind {
                FaultKind::BitFlip { addr, bit } => {
                    assert!((0x4000..0x4100).contains(&addr));
                    assert!(bit < 8);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
