//! The CPU core: fetch, decode, execute, with MSP430 cycle-table timing.
//!
//! The core is a scalar, in-order 16-bit machine. Each [`Cpu::step`]
//! fetches the opcode word and any extension words (each fetch is a
//! counted, possibly-stalling bus access), executes the instruction with
//! full MSP430 status-flag semantics, and charges the classic MSP430
//! cycle-table cost for the addressing-mode combination.

use crate::decode::{DstPlan, SrcPlan};
use crate::error::{SimError, SimResult};
use crate::isa::{is_cg_const, Instr, Opcode, Operand, Reg, Size};
use crate::mem::{AccessKind, Bus, Region};
use crate::trace::Category;

/// Carry flag bit in the status register.
pub const FLAG_C: u16 = 0x0001;
/// Zero flag bit.
pub const FLAG_Z: u16 = 0x0002;
/// Negative flag bit.
pub const FLAG_N: u16 = 0x0004;
/// Global interrupt enable bit: gates delivery of latched timer
/// interrupts (see [`crate::irq`]). Set/cleared by the guest's
/// `eint`/`dint` (`bis`/`bic #8, sr`), cleared by hardware on interrupt
/// entry and restored by `reti`.
pub const FLAG_GIE: u16 = 0x0008;
/// Overflow flag bit.
pub const FLAG_V: u16 = 0x0100;

/// Result of a single executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// Address the instruction was fetched from.
    pub pc: u16,
    /// The decoded instruction.
    pub instr: Instr,
    /// Unstalled cycles charged (stalls are accounted by the bus).
    pub cycles: u32,
}

/// The register file and execution engine.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u16; 16],
}

/// Where an operand's value lives after address resolution.
#[derive(Debug, Clone, Copy)]
enum Loc {
    Reg(Reg),
    Mem(u16),
    Imm(u16),
}

impl Cpu {
    /// Creates a CPU with all registers zeroed.
    pub fn new() -> Cpu {
        Cpu { regs: [0; 16] }
    }

    /// The program counter.
    #[inline]
    pub fn pc(&self) -> u16 {
        self.regs[0]
    }

    /// Sets the program counter.
    #[inline]
    pub fn set_pc(&mut self, pc: u16) {
        self.regs[0] = pc;
    }

    /// The stack pointer.
    #[inline]
    pub fn sp(&self) -> u16 {
        self.regs[1]
    }

    /// Sets the stack pointer.
    #[inline]
    pub fn set_sp(&mut self, sp: u16) {
        self.regs[1] = sp;
    }

    /// Reads register `r`.
    #[inline]
    pub fn reg(&self, r: Reg) -> u16 {
        self.regs[usize::from(r.num())]
    }

    /// Writes register `r`.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u16) {
        self.regs[usize::from(r.num())] = v;
    }

    /// The status register.
    pub fn sr(&self) -> u16 {
        self.regs[2]
    }

    /// Whether a status flag is set.
    #[inline]
    pub fn flag(&self, bit: u16) -> bool {
        self.regs[2] & bit != 0
    }

    #[inline]
    fn set_flag(&mut self, bit: u16, on: bool) {
        if on {
            self.regs[2] |= bit;
        } else {
            self.regs[2] &= !bit;
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Propagates bus faults and decode errors; the PC is left at the
    /// faulting instruction in that case.
    pub fn step(&mut self, bus: &mut Bus) -> SimResult<StepInfo> {
        bus.begin_instruction();
        let pc0 = self.regs[0];
        let cat = match bus.map().region_of(pc0) {
            Region::Sram => Category::AppSram,
            _ => Category::AppFram,
        };
        let w0 = bus.read_word(pc0, AccessKind::IFetch)?;
        let ext = ext_count_raw(w0);
        let mut words = [w0, 0, 0];
        for i in 0..ext {
            words[1 + i] = bus.read_word(pc0.wrapping_add(2 * (1 + i as u16)), AccessKind::IFetch)?;
        }
        let instr = Instr::decode(&words[..1 + ext], pc0)?;
        // Advance by the words actually fetched — NOT `instr.len_bytes()`:
        // an assembler may force an extension-word encoding for an
        // immediate whose value is also constant-generator representable,
        // and the decoded form cannot tell the two encodings apart.
        let next_pc = pc0.wrapping_add(2 + 2 * ext as u16);
        let cycles = instr_cycles(&instr);
        self.regs[0] = next_pc;
        self.exec_decoded(bus, &instr)?;
        bus.stats_mut().count_instruction(cat);
        bus.stats_mut().unstalled_cycles += u64::from(cycles);
        bus.end_instruction();
        Ok(StepInfo { pc: pc0, instr, cycles })
    }

    /// Executes an already-fetched instruction. The caller must have
    /// advanced the PC past the instruction (operand resolution and
    /// relative jumps observe the post-fetch PC) and is responsible for
    /// all fetch accounting, instruction attribution and cycle charging —
    /// this is the execution core shared by the interpreter
    /// ([`Cpu::step`]) and the pre-decoded engine
    /// ([`crate::blockcache::BlockEngine`]).
    pub(crate) fn exec_decoded(&mut self, bus: &mut Bus, instr: &Instr) -> SimResult<()> {
        match *instr {
            Instr::FormatI { op, size, src, dst } => self.exec_format_i(bus, op, size, src, dst),
            Instr::FormatII { op, size, dst } => self.exec_format_ii(bus, op, size, dst),
            Instr::Jump { op, offset_words } => {
                if self.jump_taken(op) {
                    self.regs[0] = self.regs[0].wrapping_add((offset_words as u16).wrapping_mul(2));
                }
                Ok(())
            }
        }
    }

    #[inline]
    fn jump_taken(&self, op: Opcode) -> bool {
        let (c, z, n, v) =
            (self.flag(FLAG_C), self.flag(FLAG_Z), self.flag(FLAG_N), self.flag(FLAG_V));
        match op {
            Opcode::Jnz => !z,
            Opcode::Jz => z,
            Opcode::Jnc => !c,
            Opcode::Jc => c,
            Opcode::Jn => n,
            Opcode::Jge => n == v,
            Opcode::Jl => n != v,
            Opcode::Jmp => true,
            _ => unreachable!("not a jump"),
        }
    }

    /// Resolves an operand to a location, performing auto-increment side
    /// effects.
    fn resolve(&mut self, op: Operand, size: Size) -> Loc {
        match op {
            Operand::Reg(r) => Loc::Reg(r),
            Operand::Indexed(x, r) => Loc::Mem(self.reg(r).wrapping_add(x)),
            Operand::Symbolic(a) | Operand::Absolute(a) => Loc::Mem(a),
            Operand::Indirect(r) => Loc::Mem(self.reg(r)),
            Operand::IndirectInc(r) => {
                let a = self.reg(r);
                let inc = if r == Reg::SP { 2 } else { size.bytes() };
                self.set_reg(r, a.wrapping_add(inc));
                Loc::Mem(a)
            }
            Operand::Imm(v) => Loc::Imm(v),
        }
    }

    fn read_loc(&self, bus: &mut Bus, loc: Loc, size: Size) -> SimResult<u16> {
        match (loc, size) {
            (Loc::Reg(r), Size::Word) => Ok(self.reg(r)),
            (Loc::Reg(r), Size::Byte) => Ok(self.reg(r) & 0xff),
            (Loc::Mem(a), Size::Word) => bus.read_word_data(a),
            (Loc::Mem(a), Size::Byte) => bus.read_byte_data(a).map(u16::from),
            (Loc::Imm(v), Size::Word) => Ok(v),
            (Loc::Imm(v), Size::Byte) => Ok(v & 0xff),
        }
    }

    fn write_loc(&mut self, bus: &mut Bus, loc: Loc, size: Size, value: u16) -> SimResult<()> {
        match (loc, size) {
            (Loc::Reg(r), Size::Word) => {
                self.set_reg(r, value);
                Ok(())
            }
            // Byte operations on a register clear the upper byte.
            (Loc::Reg(r), Size::Byte) => {
                self.set_reg(r, value & 0xff);
                Ok(())
            }
            (Loc::Mem(a), Size::Word) => bus.write_word(a, value),
            (Loc::Mem(a), Size::Byte) => bus.write_byte(a, (value & 0xff) as u8),
            (Loc::Imm(_), _) => {
                Err(SimError::BadEncoding("write to immediate operand".into()))
            }
        }
    }

    fn exec_format_i(
        &mut self,
        bus: &mut Bus,
        op: Opcode,
        size: Size,
        src: Operand,
        dst: Operand,
    ) -> SimResult<()> {
        let (mask, sign): (u32, u32) = match size {
            Size::Word => (0xFFFF, 0x8000),
            Size::Byte => (0xFF, 0x80),
        };
        let sloc = self.resolve(src, size);
        let sval = u32::from(self.read_loc(bus, sloc, size)?);
        let dloc = self.resolve(dst, size);
        let reads_dst = !matches!(op, Opcode::Mov);
        let dval = if reads_dst { u32::from(self.read_loc(bus, dloc, size)?) } else { 0 };

        let (result, writeback) = self.alu_format_i(op, mask, sign, sval, dval)?;

        if writeback {
            self.write_loc(bus, dloc, size, (result & mask) as u16)?;
        }
        Ok(())
    }

    /// Executes a Format-I instruction whose operands are a register or
    /// immediate source and a register destination — the pre-lowered form
    /// dispatched inside batched runs (see
    /// [`crate::decode::ExecPlan`]). Shares [`Cpu::alu_format_i`] with the
    /// generic path, so the semantics cannot diverge; only the operand
    /// location plumbing is flattened away.
    ///
    /// # Errors
    ///
    /// As [`Cpu::exec_decoded`] — unreachable for the opcodes the decoder
    /// produces, kept for parity.
    #[inline]
    pub(crate) fn exec_alu_reg(
        &mut self,
        op: Opcode,
        size: Size,
        sval_raw: u16,
        dst: Reg,
    ) -> SimResult<()> {
        let (mask, sign): (u32, u32) = match size {
            Size::Word => (0xFFFF, 0x8000),
            Size::Byte => (0xFF, 0x80),
        };
        let sval = u32::from(sval_raw) & mask;
        let reads_dst = !matches!(op, Opcode::Mov);
        let dval = if reads_dst { u32::from(self.reg(dst)) & mask } else { 0 };
        let (result, writeback) = self.alu_format_i(op, mask, sign, sval, dval)?;
        if writeback {
            self.set_reg(dst, (result & mask) as u16);
        }
        Ok(())
    }

    /// Executes a Format-I instruction with at least one memory operand
    /// through its pre-matched operand shape (see
    /// [`crate::decode::ExecPlan::Alu`]). Reproduces
    /// [`Cpu::exec_format_i`]'s evaluation order exactly — source resolve
    /// (with `@Rn+` auto-increment side effect), source read, destination
    /// resolve, destination read, ALU, writeback — through the same bus
    /// entry points, so accounting, faults and partial state on error are
    /// identical; only the per-execution operand matching is flattened.
    ///
    /// # Errors
    ///
    /// As [`Cpu::exec_decoded`]: any memory operand access may fault, with
    /// all earlier side effects (including auto-increment) committed.
    pub(crate) fn exec_alu(
        &mut self,
        bus: &mut Bus,
        op: Opcode,
        size: Size,
        src: SrcPlan,
        dst: DstPlan,
    ) -> SimResult<()> {
        let (mask, sign): (u32, u32) = match size {
            Size::Word => (0xFFFF, 0x8000),
            Size::Byte => (0xFF, 0x80),
        };
        let sval = u32::from(self.read_src_plan(bus, src, size)?);
        #[derive(Clone, Copy)]
        enum DLoc {
            R(Reg),
            M(u16),
        }
        // Resolved after the source read, as in the interpreter: an
        // indexed destination observes a source auto-increment of its
        // base register.
        let dloc = match dst {
            DstPlan::Reg(r) => DLoc::R(r),
            DstPlan::Idx(r, x) => DLoc::M(self.reg(r).wrapping_add(x)),
            DstPlan::Abs(a) => DLoc::M(a),
        };
        let reads_dst = !matches!(op, Opcode::Mov);
        let dval = if reads_dst {
            match dloc {
                DLoc::R(r) => u32::from(self.reg(r)) & mask,
                DLoc::M(a) => u32::from(read_mem(bus, a, size)?),
            }
        } else {
            0
        };
        let (result, writeback) = self.alu_format_i(op, mask, sign, sval, dval)?;
        if writeback {
            let v = (result & mask) as u16;
            match (dloc, size) {
                (DLoc::R(r), _) => self.set_reg(r, v),
                (DLoc::M(a), Size::Word) => bus.write_word(a, v)?,
                (DLoc::M(a), Size::Byte) => bus.write_byte(a, v as u8)?,
            }
        }
        Ok(())
    }

    /// Reads a pre-matched source operand, performing the `@Rn+`
    /// auto-increment side effect — exactly [`Cpu::resolve`] followed by
    /// [`Cpu::read_loc`] for the corresponding [`Operand`] (register and
    /// immediate reads are masked to the operand size, as `read_loc`
    /// does).
    ///
    /// # Errors
    ///
    /// A memory source may fault; the auto-increment is already committed,
    /// as in the interpreter.
    #[inline]
    fn read_src_plan(&mut self, bus: &mut Bus, src: SrcPlan, size: Size) -> SimResult<u16> {
        Ok(match src {
            SrcPlan::Imm(v) => match size {
                Size::Word => v,
                Size::Byte => v & 0xff,
            },
            SrcPlan::Reg(r) => match size {
                Size::Word => self.reg(r),
                Size::Byte => self.reg(r) & 0xff,
            },
            SrcPlan::Idx(r, x) => read_mem(bus, self.reg(r).wrapping_add(x), size)?,
            SrcPlan::Abs(a) => read_mem(bus, a, size)?,
            SrcPlan::Ind(r) => read_mem(bus, self.reg(r), size)?,
            SrcPlan::IndInc(r) => {
                let a = self.reg(r);
                let inc = if r == Reg::SP { 2 } else { size.bytes() };
                self.set_reg(r, a.wrapping_add(inc));
                read_mem(bus, a, size)?
            }
        })
    }

    /// Executes a PUSH through its pre-matched operand shape (see
    /// [`crate::decode::ExecPlan::Push`]); also the implementation behind
    /// the generic Format-II arm, so the paths cannot diverge.
    ///
    /// # Errors
    ///
    /// The operand read or the stack write may fault, with the same
    /// partial state as the interpreter (SP already decremented before the
    /// write).
    pub(crate) fn exec_push(&mut self, bus: &mut Bus, size: Size, src: SrcPlan) -> SimResult<()> {
        let v = self.read_src_plan(bus, src, size)?;
        let sp = self.sp().wrapping_sub(2);
        self.set_sp(sp);
        match size {
            Size::Word => bus.write_word(sp, v)?,
            Size::Byte => bus.write_byte(sp, (v & 0xff) as u8)?,
        }
        Ok(())
    }

    /// Executes a CALL through its pre-matched operand shape (see
    /// [`crate::decode::ExecPlan::Call`]); also the implementation behind
    /// the generic Format-II arm.
    ///
    /// # Errors
    ///
    /// The target read or the return-address push may fault, with the same
    /// partial state as the interpreter.
    pub(crate) fn exec_call(&mut self, bus: &mut Bus, src: SrcPlan) -> SimResult<()> {
        let target = self.read_src_plan(bus, src, Size::Word)?;
        let sp = self.sp().wrapping_sub(2);
        self.set_sp(sp);
        bus.write_word(sp, self.regs[0])?;
        self.regs[0] = target;
        Ok(())
    }

    /// Executes a RETI (see [`crate::decode::ExecPlan::Reti`]); also the
    /// implementation behind the generic Format-II arm.
    ///
    /// # Errors
    ///
    /// Either stack pop may fault, with the same partial state as the
    /// interpreter.
    pub(crate) fn exec_reti(&mut self, bus: &mut Bus) -> SimResult<()> {
        let sr = bus.read_word_data(self.sp())?;
        self.set_sp(self.sp().wrapping_add(2));
        let pc = bus.read_word_data(self.sp())?;
        self.set_sp(self.sp().wrapping_add(2));
        self.regs[2] = sr;
        self.regs[0] = pc;
        bus.note_reti();
        Ok(())
    }

    /// Executes a register-destination RRA/RRC/SWPB/SXT through its
    /// pre-matched shape (see [`crate::decode::ExecPlan::Fmt2Reg`]),
    /// sharing the interpreter's result/flag cores.
    ///
    /// # Errors
    ///
    /// [`SimError::BadEncoding`] for a non-Format-II opcode — unreachable
    /// for plans the decoder produces, kept for parity.
    pub(crate) fn exec_fmt2_reg(&mut self, op: Opcode, size: Size, dst: Reg) -> SimResult<()> {
        match op {
            Opcode::Rra | Opcode::Rrc => {
                let (mask, sign): (u32, u32) = match size {
                    Size::Word => (0xFFFF, 0x8000),
                    Size::Byte => (0xFF, 0x80),
                };
                let v = u32::from(self.reg(dst)) & mask;
                let r = self.rotate_core(op, mask, sign, v);
                self.set_reg(dst, r);
            }
            Opcode::Swpb => {
                let v = self.reg(dst);
                self.set_reg(dst, v.rotate_left(8));
            }
            Opcode::Sxt => {
                let r = self.sxt_core(self.reg(dst));
                self.set_reg(dst, r);
            }
            other => return Err(SimError::BadEncoding(format!("{other} is not format II"))),
        }
        Ok(())
    }

    /// Executes a jump through its pre-scaled displacement (see
    /// [`crate::decode::ExecPlan::Jmp`]); the caller must have advanced
    /// the PC past the fetch, as the interpreter does before execution.
    #[inline]
    pub(crate) fn exec_jump(&mut self, op: Opcode, offset: u16) {
        if self.jump_taken(op) {
            self.regs[0] = self.regs[0].wrapping_add(offset);
        }
    }

    /// The Format-I ALU core: computes the result and flag effects for
    /// already-read operand values, returning `(result, writeback)`.
    fn alu_format_i(
        &mut self,
        op: Opcode,
        mask: u32,
        sign: u32,
        sval: u32,
        dval: u32,
    ) -> SimResult<(u32, bool)> {
        let carry_in = u32::from(self.flag(FLAG_C));
        let mut writeback = true;
        let result: u32 = match op {
            Opcode::Mov => sval,
            Opcode::Add | Opcode::Addc | Opcode::Sub | Opcode::Subc | Opcode::Cmp => {
                let (eff_src, cin) = match op {
                    Opcode::Add => (sval, 0),
                    Opcode::Addc => (sval, carry_in),
                    Opcode::Sub | Opcode::Cmp => ((!sval) & mask, 1),
                    Opcode::Subc => ((!sval) & mask, carry_in),
                    _ => unreachable!(),
                };
                let full = dval + eff_src + cin;
                let r = full & mask;
                self.set_flag(FLAG_C, full > mask);
                self.set_flag(FLAG_Z, r == 0);
                self.set_flag(FLAG_N, r & sign != 0);
                // Signed overflow: operands agree in sign, result differs.
                let v = ((dval ^ r) & (eff_src ^ r) & sign) != 0;
                self.set_flag(FLAG_V, v);
                if matches!(op, Opcode::Cmp) {
                    writeback = false;
                }
                r
            }
            Opcode::Dadd => {
                let digits = if mask == 0xFFFF { 4 } else { 2 };
                let mut carry = carry_in;
                let mut r: u32 = 0;
                for i in 0..digits {
                    let dn = (dval >> (4 * i)) & 0xF;
                    let sn = (sval >> (4 * i)) & 0xF;
                    let mut t = dn + sn + carry;
                    if t > 9 {
                        t -= 10;
                        carry = 1;
                    } else {
                        carry = 0;
                    }
                    r |= t << (4 * i);
                }
                self.set_flag(FLAG_C, carry != 0);
                self.set_flag(FLAG_Z, r == 0);
                self.set_flag(FLAG_N, r & sign != 0);
                r
            }
            Opcode::Bit | Opcode::And => {
                let r = dval & sval;
                self.set_flag(FLAG_Z, r == 0);
                self.set_flag(FLAG_N, r & sign != 0);
                self.set_flag(FLAG_C, r != 0);
                self.set_flag(FLAG_V, false);
                if matches!(op, Opcode::Bit) {
                    writeback = false;
                }
                r
            }
            Opcode::Bic => {
                writeback = true;
                dval & !sval & mask
            }
            Opcode::Bis => dval | sval,
            Opcode::Xor => {
                let r = (dval ^ sval) & mask;
                self.set_flag(FLAG_Z, r == 0);
                self.set_flag(FLAG_N, r & sign != 0);
                self.set_flag(FLAG_C, r != 0);
                self.set_flag(FLAG_V, dval & sign != 0 && sval & sign != 0);
                r
            }
            other => {
                return Err(SimError::BadEncoding(format!("{other} is not format I")))
            }
        };
        Ok((result, writeback))
    }

    /// RRA/RRC result-and-flag core for an already-read operand value,
    /// shared by the generic and pre-lowered paths.
    fn rotate_core(&mut self, op: Opcode, mask: u32, sign: u32, v: u32) -> u16 {
        let new_c = v & 1 != 0;
        let top = match op {
            Opcode::Rra => v & sign,
            _ => {
                if self.flag(FLAG_C) {
                    sign
                } else {
                    0
                }
            }
        };
        let r = (v >> 1) | top;
        self.set_flag(FLAG_C, new_c);
        self.set_flag(FLAG_Z, r == 0);
        self.set_flag(FLAG_N, r & sign != 0);
        self.set_flag(FLAG_V, false);
        (r & mask) as u16
    }

    /// SXT result-and-flag core for an already-read operand value, shared
    /// by the generic and pre-lowered paths.
    fn sxt_core(&mut self, v: u16) -> u16 {
        let r = if v & 0x80 != 0 { v | 0xFF00 } else { v & 0x00FF };
        self.set_flag(FLAG_Z, r == 0);
        self.set_flag(FLAG_N, r & 0x8000 != 0);
        self.set_flag(FLAG_C, r != 0);
        self.set_flag(FLAG_V, false);
        r
    }

    fn exec_format_ii(
        &mut self,
        bus: &mut Bus,
        op: Opcode,
        size: Size,
        dst: Operand,
    ) -> SimResult<()> {
        let (mask, sign): (u32, u32) = match size {
            Size::Word => (0xFFFF, 0x8000),
            Size::Byte => (0xFF, 0x80),
        };
        match op {
            Opcode::Rra | Opcode::Rrc => {
                let loc = self.resolve(dst, size);
                let v = u32::from(self.read_loc(bus, loc, size)?);
                let r = self.rotate_core(op, mask, sign, v);
                self.write_loc(bus, loc, size, r)?;
                Ok(())
            }
            Opcode::Swpb => {
                let loc = self.resolve(dst, Size::Word);
                let v = self.read_loc(bus, loc, Size::Word)?;
                let r = v.rotate_left(8);
                self.write_loc(bus, loc, Size::Word, r)?;
                Ok(())
            }
            Opcode::Sxt => {
                let loc = self.resolve(dst, Size::Word);
                let v = self.read_loc(bus, loc, Size::Word)?;
                let r = self.sxt_core(v);
                self.write_loc(bus, loc, Size::Word, r)?;
                Ok(())
            }
            Opcode::Push => self.exec_push(bus, size, crate::decode::to_src_plan(dst)),
            Opcode::Call => self.exec_call(bus, crate::decode::to_src_plan(dst)),
            Opcode::Reti => self.exec_reti(bus),
            other => Err(SimError::BadEncoding(format!("{other} is not format II"))),
        }
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

/// Data read through the bus, as [`Cpu::read_loc`]'s memory arm — kept a
/// free function so lowered executors can call it with the register file
/// already borrowed.
#[inline]
fn read_mem(bus: &mut Bus, addr: u16, size: Size) -> SimResult<u16> {
    match size {
        Size::Word => bus.read_word_data(addr),
        Size::Byte => bus.read_byte_data(addr).map(u16::from),
    }
}

/// Cycle cost of a decoded instruction — a pure function of the opcode and
/// the operand addressing modes, so it can be computed once at decode time
/// and reused on every dispatch of a cached block.
///
/// Opcodes that are invalid for their format cost 0 here; execution rejects
/// them with [`SimError::BadEncoding`] before any cycles are charged.
pub(crate) fn instr_cycles(instr: &Instr) -> u32 {
    match *instr {
        Instr::FormatI { src, dst, .. } => cycles_format_i(src, dst),
        Instr::FormatII { op, dst, .. } => match op {
            Opcode::Rra | Opcode::Rrc | Opcode::Swpb | Opcode::Sxt => cycles_shift(dst),
            Opcode::Push => cycles_push(dst),
            Opcode::Call => cycles_call(dst),
            Opcode::Reti => 5,
            _ => 0,
        },
        Instr::Jump { .. } => 2,
    }
}

/// Extension-word count straight from a raw opcode word (used to know how
/// many words to fetch before decoding).
pub(crate) fn ext_count_raw(w: u16) -> usize {
    if w & 0xE000 == 0x2000 {
        return 0; // jump
    }
    let src_ext = |reg: u16, amode: u16| -> usize {
        match amode {
            1 => usize::from(reg != 3),  // R3 As=1 is constant 1
            3 => usize::from(reg == 0),  // @PC+ is an immediate
            _ => 0,
        }
    };
    if w & 0xF000 == 0x1000 {
        if (w >> 7) & 0x7 == 6 {
            return 0; // RETI
        }
        src_ext(w & 0xF, (w >> 4) & 0x3)
    } else {
        let s = src_ext((w >> 8) & 0xF, (w >> 4) & 0x3);
        s + usize::from((w >> 7) & 1)
    }
}

/// Source addressing class for the cycle table: 0 = register/constant,
/// 1 = indirect/auto-increment/immediate, 2 = indexed/symbolic/absolute.
fn src_class(op: Operand) -> usize {
    match op {
        Operand::Reg(_) => 0,
        Operand::Imm(v) if is_cg_const(v) => 0,
        Operand::Indirect(_) | Operand::IndirectInc(_) | Operand::Imm(_) => 1,
        Operand::Indexed(..) | Operand::Symbolic(_) | Operand::Absolute(_) => 2,
    }
}

/// Classic MSP430 format-I cycle table.
fn cycles_format_i(src: Operand, dst: Operand) -> u32 {
    let s = src_class(src);
    match dst {
        Operand::Reg(Reg::PC) => [2, 3, 3][s],
        Operand::Reg(_) => [1, 2, 3][s],
        _ => [4, 5, 6][s],
    }
}

/// Cycle cost of RRA/RRC/SWPB/SXT by operand mode.
fn cycles_shift(dst: Operand) -> u32 {
    match dst {
        Operand::Reg(_) => 1,
        Operand::Indirect(_) | Operand::IndirectInc(_) | Operand::Imm(_) => 3,
        _ => 4,
    }
}

/// Cycle cost of PUSH by operand mode.
fn cycles_push(dst: Operand) -> u32 {
    match dst {
        Operand::Reg(_) => 3,
        Operand::Indirect(_) | Operand::IndirectInc(_) | Operand::Imm(_) => 4,
        _ => 5,
    }
}

/// Cycle cost of CALL by operand mode.
fn cycles_call(dst: Operand) -> u32 {
    match dst {
        Operand::Reg(_) | Operand::Indirect(_) => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::Frequency;
    use crate::hwcache::HwCache;
    use crate::isa::Size;
    use crate::mem::MemoryMap;

    /// Builds a bus with `instrs` assembled at 0x4000 and a CPU ready to
    /// execute them.
    fn setup(instrs: &[Instr]) -> (Cpu, Bus) {
        let mut bus = Bus::new(MemoryMap::fr2355(), HwCache::fr2355(), Frequency::MHZ_8);
        let mut at = 0x4000u16;
        for i in instrs {
            for w in i.encode(at).unwrap() {
                bus.poke_word(at, w);
                at = at.wrapping_add(2);
            }
        }
        let mut cpu = Cpu::new();
        cpu.set_pc(0x4000);
        cpu.set_sp(0x3000);
        (cpu, bus)
    }

    fn mov_imm(v: u16, r: Reg) -> Instr {
        Instr::FormatI { op: Opcode::Mov, size: Size::Word, src: Operand::Imm(v), dst: Operand::Reg(r) }
    }

    fn fi(op: Opcode, src: Operand, dst: Operand) -> Instr {
        Instr::FormatI { op, size: Size::Word, src, dst }
    }

    #[test]
    fn mov_and_add() {
        let (mut cpu, mut bus) = setup(&[
            mov_imm(5, Reg::R12),
            mov_imm(7, Reg::R13),
            fi(Opcode::Add, Operand::Reg(Reg::R12), Operand::Reg(Reg::R13)),
        ]);
        for _ in 0..3 {
            cpu.step(&mut bus).unwrap();
        }
        assert_eq!(cpu.reg(Reg::R13), 12);
        assert!(!cpu.flag(FLAG_Z));
        assert!(!cpu.flag(FLAG_C));
    }

    #[test]
    fn add_sets_carry_and_overflow() {
        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x8000, Reg::R12),
            fi(Opcode::Add, Operand::Imm(0x8000), Operand::Reg(Reg::R12)),
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 0);
        assert!(cpu.flag(FLAG_C));
        assert!(cpu.flag(FLAG_Z));
        assert!(cpu.flag(FLAG_V)); // negative + negative = positive
    }

    #[test]
    fn sub_carry_is_not_borrow() {
        // 5 - 3: no borrow => C set.
        let (mut cpu, mut bus) = setup(&[
            mov_imm(5, Reg::R12),
            fi(Opcode::Sub, Operand::Imm(3), Operand::Reg(Reg::R12)),
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 2);
        assert!(cpu.flag(FLAG_C));
        // 3 - 5: borrow => C clear, negative result.
        let (mut cpu, mut bus) = setup(&[
            mov_imm(3, Reg::R12),
            fi(Opcode::Sub, Operand::Imm(5), Operand::Reg(Reg::R12)),
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 0xFFFE);
        assert!(!cpu.flag(FLAG_C));
        assert!(cpu.flag(FLAG_N));
    }

    #[test]
    fn cmp_does_not_write() {
        let (mut cpu, mut bus) = setup(&[
            mov_imm(9, Reg::R12),
            fi(Opcode::Cmp, Operand::Imm(9), Operand::Reg(Reg::R12)),
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 9);
        assert!(cpu.flag(FLAG_Z));
    }

    #[test]
    fn logic_ops_and_flags() {
        let (mut cpu, mut bus) = setup(&[
            mov_imm(0xF0F0, Reg::R12),
            fi(Opcode::And, Operand::Imm(0x0FF0), Operand::Reg(Reg::R12)),
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 0x00F0);
        assert!(cpu.flag(FLAG_C)); // C = !Z for AND
        assert!(!cpu.flag(FLAG_Z));
    }

    #[test]
    fn bic_bis_do_not_touch_flags() {
        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x0001, Reg::SR), // set carry manually
            fi(Opcode::Bis, Operand::Imm(0xFF00), Operand::Reg(Reg::R12)),
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert!(cpu.flag(FLAG_C), "BIS must not clear flags");
        assert_eq!(cpu.reg(Reg::R12), 0xFF00);
    }

    #[test]
    fn xor_overflow_when_both_negative() {
        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x8001, Reg::R12),
            fi(Opcode::Xor, Operand::Imm(0x8000), Operand::Reg(Reg::R12)),
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 1);
        assert!(cpu.flag(FLAG_V));
    }

    #[test]
    fn byte_op_clears_register_high_byte() {
        let (mut cpu, mut bus) = setup(&[mov_imm(0x1234, Reg::R12)]);
        bus.poke_word(0x4004, 0);
        cpu.step(&mut bus).unwrap();
        // ADD.B #1, R12
        let i = Instr::FormatI {
            op: Opcode::Add,
            size: Size::Byte,
            src: Operand::Imm(1),
            dst: Operand::Reg(Reg::R12),
        };
        for (k, w) in i.encode(cpu.pc()).unwrap().into_iter().enumerate() {
            bus.poke_word(cpu.pc() + 2 * k as u16, w);
        }
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 0x0035);
    }

    #[test]
    fn memory_operands_roundtrip() {
        let (mut cpu, mut bus) = setup(&[
            fi(Opcode::Mov, Operand::Imm(0xABCD), Operand::Absolute(0x2100)),
            fi(Opcode::Mov, Operand::Absolute(0x2100), Operand::Reg(Reg::R14)),
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R14), 0xABCD);
        assert_eq!(bus.peek_word(0x2100), 0xABCD);
    }

    #[test]
    fn indexed_addressing() {
        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x2100, Reg::r(10)),
            fi(Opcode::Mov, Operand::Imm(0x5555), Operand::Indexed(4, Reg::r(10))),
            fi(Opcode::Mov, Operand::Indexed(4, Reg::r(10)), Operand::Reg(Reg::R15)),
        ]);
        for _ in 0..3 {
            cpu.step(&mut bus).unwrap();
        }
        assert_eq!(bus.peek_word(0x2104), 0x5555);
        assert_eq!(cpu.reg(Reg::R15), 0x5555);
    }

    #[test]
    fn autoincrement_advances_register() {
        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x2100, Reg::r(10)),
            fi(Opcode::Mov, Operand::IndirectInc(Reg::r(10)), Operand::Reg(Reg::R15)),
        ]);
        bus.poke_word(0x2100, 42);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R15), 42);
        assert_eq!(cpu.reg(Reg::r(10)), 0x2102);
    }

    #[test]
    fn byte_autoincrement_advances_by_one() {
        let (mut cpu, mut bus) = setup(&[mov_imm(0x2100, Reg::r(10))]);
        cpu.step(&mut bus).unwrap();
        let i = Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Byte,
            src: Operand::IndirectInc(Reg::r(10)),
            dst: Operand::Reg(Reg::R15),
        };
        for (k, w) in i.encode(cpu.pc()).unwrap().into_iter().enumerate() {
            bus.poke_word(cpu.pc() + 2 * k as u16, w);
        }
        bus.poke_byte(0x2100, 0x7E);
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R15), 0x7E);
        assert_eq!(cpu.reg(Reg::r(10)), 0x2101);
    }

    #[test]
    fn call_and_ret() {
        // CALL #0x4100; (at 0x4100) MOV @SP+, PC  (RET)
        let call = Instr::FormatII {
            op: Opcode::Call,
            size: Size::Word,
            dst: Operand::Imm(0x4100),
        };
        let (mut cpu, mut bus) = setup(&[call]);
        let ret = fi(Opcode::Mov, Operand::IndirectInc(Reg::SP), Operand::Reg(Reg::PC));
        for (k, w) in ret.encode(0x4100).unwrap().into_iter().enumerate() {
            bus.poke_word(0x4100 + 2 * k as u16, w);
        }
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.pc(), 0x4100);
        assert_eq!(cpu.sp(), 0x2FFE);
        assert_eq!(bus.peek_word(0x2FFE), 0x4004); // return address
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.pc(), 0x4004);
        assert_eq!(cpu.sp(), 0x3000);
    }

    #[test]
    fn indirect_call_through_memory() {
        // CALL &0x2200 where [0x2200] = 0x4200.
        let call = Instr::FormatII {
            op: Opcode::Call,
            size: Size::Word,
            dst: Operand::Absolute(0x2200),
        };
        let (mut cpu, mut bus) = setup(&[call]);
        bus.poke_word(0x2200, 0x4200);
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.pc(), 0x4200);
    }

    #[test]
    fn push_pop() {
        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x1111, Reg::R12),
            Instr::FormatII { op: Opcode::Push, size: Size::Word, dst: Operand::Reg(Reg::R12) },
            fi(Opcode::Mov, Operand::IndirectInc(Reg::SP), Operand::Reg(Reg::R13)),
        ]);
        for _ in 0..3 {
            cpu.step(&mut bus).unwrap();
        }
        assert_eq!(cpu.reg(Reg::R13), 0x1111);
        assert_eq!(cpu.sp(), 0x3000);
    }

    #[test]
    fn jumps_conditional() {
        // MOV #1,R12 ; SUB #1,R12 ; JZ +2 (skip the 2-word MOV) ; MOV #9,R13 ; MOV #7,R14
        let (mut cpu, mut bus) = setup(&[
            mov_imm(1, Reg::R12),
            fi(Opcode::Sub, Operand::Imm(1), Operand::Reg(Reg::R12)),
            Instr::Jump { op: Opcode::Jz, offset_words: 2 },
            mov_imm(9, Reg::R13),
            mov_imm(7, Reg::R14),
        ]);
        for _ in 0..4 {
            cpu.step(&mut bus).unwrap();
        }
        assert_eq!(cpu.reg(Reg::R13), 0, "JZ should have skipped the MOV");
        assert_eq!(cpu.reg(Reg::R14), 7);
    }

    #[test]
    fn signed_jumps() {
        // CMP #5, R12 with R12 = 3 => 3 - 5 negative => JL taken.
        let (mut cpu, mut bus) = setup(&[
            mov_imm(3, Reg::R12),
            fi(Opcode::Cmp, Operand::Imm(5), Operand::Reg(Reg::R12)),
            // MOV #1 uses the constant generator, so it is one word long.
            Instr::Jump { op: Opcode::Jl, offset_words: 1 },
            mov_imm(1, Reg::R15),
            mov_imm(2, Reg::R14),
        ]);
        for _ in 0..4 {
            cpu.step(&mut bus).unwrap();
        }
        assert_eq!(cpu.reg(Reg::R15), 0);
        assert_eq!(cpu.reg(Reg::R14), 2);
    }

    #[test]
    fn rra_rrc_swpb_sxt() {
        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x8004, Reg::R12),
            Instr::FormatII { op: Opcode::Rra, size: Size::Word, dst: Operand::Reg(Reg::R12) },
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 0xC002, "RRA preserves the sign bit");
        assert!(!cpu.flag(FLAG_C));

        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x0001, Reg::R12),
            Instr::FormatII { op: Opcode::Rrc, size: Size::Word, dst: Operand::Reg(Reg::R12) },
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 0x0000);
        assert!(cpu.flag(FLAG_C), "bit 0 rotates into carry");

        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x1234, Reg::R12),
            Instr::FormatII { op: Opcode::Swpb, size: Size::Word, dst: Operand::Reg(Reg::R12) },
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 0x3412);

        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x0080, Reg::R12),
            Instr::FormatII { op: Opcode::Sxt, size: Size::Word, dst: Operand::Reg(Reg::R12) },
        ]);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(Reg::R12), 0xFF80);
        assert!(cpu.flag(FLAG_N));
    }

    #[test]
    fn dadd_decimal() {
        // 0x0019 + 0x0003 in BCD = 0x0022.
        let (mut cpu, mut bus) = setup(&[
            mov_imm(0x0019, Reg::R12),
            fi(Opcode::Bic, Operand::Imm(FLAG_C), Operand::Reg(Reg::SR)),
            fi(Opcode::Dadd, Operand::Imm(0x0003), Operand::Reg(Reg::R12)),
        ]);
        // Rewrite: DADD with imm 3 uses CG. Encode sequence already set up.
        for _ in 0..3 {
            cpu.step(&mut bus).unwrap();
        }
        assert_eq!(cpu.reg(Reg::R12), 0x0022);
    }

    #[test]
    fn cycle_costs_match_classic_table() {
        // MOV Rn, Rm = 1 cycle.
        let (mut cpu, mut bus) =
            setup(&[fi(Opcode::Mov, Operand::Reg(Reg::R12), Operand::Reg(Reg::R13))]);
        assert_eq!(cpu.step(&mut bus).unwrap().cycles, 1);
        // MOV #ext, Rm = 2 cycles.
        let (mut cpu, mut bus) = setup(&[mov_imm(0x1234, Reg::R13)]);
        assert_eq!(cpu.step(&mut bus).unwrap().cycles, 2);
        // MOV &abs, &abs = 6 cycles.
        let (mut cpu, mut bus) =
            setup(&[fi(Opcode::Mov, Operand::Absolute(0x2100), Operand::Absolute(0x2102))]);
        assert_eq!(cpu.step(&mut bus).unwrap().cycles, 6);
        // CALL #imm = 5 cycles.
        let (mut cpu, mut bus) = setup(&[Instr::FormatII {
            op: Opcode::Call,
            size: Size::Word,
            dst: Operand::Imm(0x4100),
        }]);
        assert_eq!(cpu.step(&mut bus).unwrap().cycles, 5);
        // Jump = 2 cycles.
        let (mut cpu, mut bus) = setup(&[Instr::Jump { op: Opcode::Jmp, offset_words: 0 }]);
        assert_eq!(cpu.step(&mut bus).unwrap().cycles, 2);
    }

    #[test]
    fn ret_via_pc_write() {
        // BR #0x4100 as MOV #imm, PC.
        let (mut cpu, mut bus) =
            setup(&[fi(Opcode::Mov, Operand::Imm(0x4100), Operand::Reg(Reg::PC))]);
        let info = cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.pc(), 0x4100);
        assert_eq!(info.cycles, 3);
    }

    #[test]
    fn instruction_attribution_by_region() {
        // Code in FRAM counts as AppFram.
        let (mut cpu, mut bus) = setup(&[mov_imm(1, Reg::R12)]);
        cpu.step(&mut bus).unwrap();
        assert_eq!(bus.stats().instructions_in(Category::AppFram), 1);
        assert_eq!(bus.stats().instructions_in(Category::AppSram), 0);
        // Same instruction placed in SRAM counts as AppSram.
        let mut bus2 = Bus::new(MemoryMap::fr2355(), HwCache::fr2355(), Frequency::MHZ_8);
        let i = mov_imm(1, Reg::R12);
        for (k, w) in i.encode(0x2000).unwrap().into_iter().enumerate() {
            bus2.poke_word(0x2000 + 2 * k as u16, w);
        }
        let mut cpu2 = Cpu::new();
        cpu2.set_pc(0x2000);
        cpu2.step(&mut bus2).unwrap();
        assert_eq!(bus2.stats().instructions_in(Category::AppSram), 1);
    }
}
