//! Clock-frequency and FRAM wait-state model.
//!
//! Embedded FRAM on the MSP430FR2355 runs at a maximum access frequency of
//! 8 MHz while the CPU runs at up to 24 MHz; above 8 MHz the memory
//! controller inserts wait states on FRAM cache misses. The paper's
//! evaluation uses 8 MHz (zero wait states) and 24 MHz (three wait cycles
//! per uncached FRAM access, per §5.4 of the paper).

/// An operating point: CPU frequency plus the FRAM wait-state cost at that
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frequency {
    /// CPU clock in MHz.
    pub mhz: u32,
    /// Stall cycles inserted for each FRAM access that misses the hardware
    /// read cache.
    pub fram_wait_cycles: u32,
}

impl Frequency {
    /// 8 MHz: the highest frequency with zero FRAM wait states.
    pub const MHZ_8: Frequency = Frequency { mhz: 8, fram_wait_cycles: 0 };
    /// 16 MHz intermediate operating point (one wait cycle).
    pub const MHZ_16: Frequency = Frequency { mhz: 16, fram_wait_cycles: 1 };
    /// 24 MHz: maximum CPU clock; each uncached FRAM access stalls the CPU
    /// for three cycles (paper §5.4).
    pub const MHZ_24: Frequency = Frequency { mhz: 24, fram_wait_cycles: 3 };

    /// Wall-clock duration of `cycles` CPU cycles at this frequency, in
    /// microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.mhz as f64
    }
}

impl Default for Frequency {
    fn default() -> Self {
        Frequency::MHZ_24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(Frequency::MHZ_8.fram_wait_cycles, 0);
        assert_eq!(Frequency::MHZ_24.fram_wait_cycles, 3);
    }

    #[test]
    fn time_conversion() {
        let f = Frequency::MHZ_8;
        assert!((f.cycles_to_us(8_000_000) - 1_000_000.0).abs() < 1e-9);
        let f = Frequency::MHZ_24;
        assert!((f.cycles_to_us(24) - 1.0).abs() < 1e-9);
    }
}
