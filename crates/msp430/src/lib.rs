//! # msp430-sim — cycle-level simulator for an MSP430-class FRAM microcontroller
//!
//! This crate is the hardware substrate for the SwapRAM reproduction: a
//! simulator of a 16-bit MSP430-class CPU attached to a split FRAM/SRAM
//! memory system, modeled after the Texas Instruments MSP430FR2355 used in
//! the paper (32 KiB FRAM, 4 KiB SRAM, CPU ≤ 24 MHz, FRAM ≤ 8 MHz with
//! wait states above that, and a tiny 2-way × 2-set × 8-byte hardware read
//! cache in front of the FRAM).
//!
//! The simulator plays the role of both the physical evaluation board and
//! the modified `mspdebug` simulator from the paper: it counts every memory
//! access (categorised as instruction fetch, data read, or data write, per
//! memory region), charges MSP430 cycle-table timings plus FRAM wait-state
//! stalls, and integrates a per-access/per-cycle energy model.
//!
//! Programs are produced by the `msp430-asm` crate; see the workspace
//! examples for end-to-end usage. A minimal machine-level example:
//!
//! ```
//! use msp430_sim::machine::Fr2355;
//! use msp430_sim::freq::Frequency;
//!
//! let machine = Fr2355::machine(Frequency::MHZ_24);
//! assert_eq!(machine.bus().map().sram.len(), 4 * 1024);
//! assert_eq!(machine.bus().map().fram.len(), 32 * 1024);
//! ```

pub mod blockcache;
pub mod cpu;
pub mod decode;
pub mod energy;
pub mod error;
pub mod fault;
pub mod freq;
pub mod hwcache;
pub mod irq;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod ports;
pub mod profile;
pub mod rng;
pub mod sanitize;
pub mod trace;

pub use cpu::Cpu;
pub use energy::EnergyModel;
pub use error::{SimError, SimResult};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use freq::Frequency;
pub use irq::{IrqSchedule, IrqTimer};
pub use isa::{AddrMode, Instr, Opcode, Operand, Reg};
pub use machine::{
    default_engine, set_default_engine, Engine, ExitReason, Hook, IrqBoundary, Machine, RunOutcome,
    TrapAction, ENGINE_ENV, IRQ_LATENCY_CYCLES,
};
pub use mem::{AccessKind, Bus, MemoryMap, Region};
pub use sanitize::{SanitizerConfig, Violation};
pub use trace::{Category, Stats};
