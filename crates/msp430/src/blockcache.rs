//! Pre-decoded basic-block dispatch engine.
//!
//! [`BlockEngine`] caches [`crate::decode::Block`]s keyed by physical
//! address and executes one instruction per [`BlockEngine::step`] call —
//! the same granularity as the interpreter, so [`crate::machine::Machine`]
//! keeps polling faults, sanitizer violations and the cycle budget at
//! identical points — while eliminating the per-step fetch/decode work and
//! dispatching precomputed cycle/category/accounting plans instead. When
//! the machine proves nothing can observe instruction boundaries (no fault
//! plan, no profiler), [`BlockEngine::step_batched`] executes whole
//! straight-line runs per call with the run loop's checks replicated
//! inline, eliminating the per-instruction dispatch overhead too.
//!
//! # Invalidation contract
//!
//! Cached blocks are snapshots of code bytes, and SwapRAM rewrites code at
//! runtime (redirection words, relocation words, function bodies copied
//! into SRAM), so staleness is the central hazard. The engine leans on the
//! [`crate::mem::Bus`] code write barrier:
//!
//! * Every cached block registers its byte range with the barrier
//!   (64-byte granule counts).
//! * Every store into a watched granule — CPU stores, host-side pokes,
//!   image loads, injected bit flips, and the SRAM clear of a power cycle
//!   — is recorded with its address range and bumps a generation counter.
//! * At the top of every `step`, a changed generation triggers a drain:
//!   exactly the blocks whose `[start, end)` overlaps a recorded write are
//!   dropped. An unchanged generation (the overwhelmingly common case) is
//!   one integer compare.
//!
//! Two events invalidate wholesale rather than precisely: a machine
//! [`crate::machine::Machine::power_cycle`] (volatile state is gone and
//! sanitizer fill tracking reset, so SRAM-resident blocks and their skip
//! analysis are void) and sanitizer reattachment (detected via the bus's
//! sanitizer epoch), since blocks bake in a skip analysis proved against
//! the previous sanitizer's state.
//!
//! A PC with no buildable block (trap window, MMIO, undecodable bytes)
//! delegates to the interpreter for that one instruction, reproducing its
//! exact fault/stat behaviour.

use crate::cpu::Cpu;
use crate::decode::{build_block, Block, ExecPlan, Plan};
use crate::error::SimResult;
use crate::mem::Bus;

/// The `starts` table stores `slot + 1` so that 0 means "no block starts
/// at this address" — an all-zero table lets construction use the
/// allocator's zero pages instead of a 256 KiB memset per engine.
const NO_BLOCK: u32 = 0;
/// Granule shift of the invalidation index (matches the bus barrier's
/// 64-byte granules).
const GRANULE_SHIFT: u32 = 6;
/// Number of granules covering the address space.
const GRANULES: usize = 0x1_0000 >> GRANULE_SHIFT;

/// The block cache and dispatcher. One engine is owned per
/// [`crate::machine::Machine`] (see [`crate::machine::Engine`]).
#[derive(Debug)]
pub struct BlockEngine {
    /// `pc → arena slot` of the block starting exactly at `pc`.
    starts: Vec<u32>,
    /// Block storage; freed slots are recycled via `free`.
    arena: Vec<Option<Block>>,
    free: Vec<u32>,
    /// `granule → arena slots` of blocks overlapping the granule, for
    /// precise invalidation.
    granule_blocks: Vec<Vec<u32>>,
    /// Straight-line fast path: the block slot and instruction index the
    /// previous step predicted for this one.
    cursor: Option<(u32, usize)>,
    /// Last drained write-barrier generation.
    seen_gen: u64,
    /// Last observed sanitizer epoch.
    seen_epoch: u64,
    /// Reused drain buffers.
    scratch: Vec<(u16, u32)>,
    candidates: Vec<u32>,
    blocks_built: u64,
    blocks_invalidated: u64,
    delegated: u64,
}

impl BlockEngine {
    /// Creates an empty engine. Call [`BlockEngine::reset`] against the
    /// owning bus before stepping so barrier state is in sync.
    pub fn new() -> BlockEngine {
        BlockEngine {
            starts: vec![NO_BLOCK; 0x1_0000],
            arena: Vec::new(),
            free: Vec::new(),
            granule_blocks: vec![Vec::new(); GRANULES],
            cursor: None,
            seen_gen: 0,
            seen_epoch: 0,
            scratch: Vec::new(),
            candidates: Vec::new(),
            blocks_built: 0,
            blocks_invalidated: 0,
            delegated: 0,
        }
    }

    /// Total blocks decoded since creation.
    pub fn blocks_built(&self) -> u64 {
        self.blocks_built
    }

    /// Total blocks dropped by precise (write-overlap) invalidation.
    pub fn blocks_invalidated(&self) -> u64 {
        self.blocks_invalidated
    }

    /// Steps delegated to the interpreter (no block representable).
    pub fn delegated(&self) -> u64 {
        self.delegated
    }

    /// Drops every cached block and resynchronises with the bus barrier.
    pub fn reset(&mut self, bus: &mut Bus) {
        for slot in 0..self.arena.len() as u32 {
            self.remove_block(bus, slot);
        }
        self.arena.clear();
        self.free.clear();
        self.cursor = None;
        bus.clear_code_watch();
        self.scratch.clear();
        bus.drain_code_dirty(&mut self.scratch);
        self.scratch.clear();
        self.seen_gen = bus.code_watch_gen();
        self.seen_epoch = bus.sanitizer_epoch();
    }

    /// Executes one instruction at the CPU's current PC, byte-identical in
    /// observable behaviour to [`Cpu::step`].
    ///
    /// # Errors
    ///
    /// Exactly the conditions under which the interpreter errors, with the
    /// same partial state (PC advanced past the fetch, fetch accounting
    /// charged, instruction/cycle counts not).
    pub fn step(&mut self, cpu: &mut Cpu, bus: &mut Bus) -> SimResult<()> {
        if bus.sanitizer_epoch() != self.seen_epoch {
            self.reset(bus);
        }
        if bus.code_watch_gen() != self.seen_gen {
            self.drain(bus);
        }
        let pc = cpu.pc();
        let (slot, idx) = match self.cursor {
            Some((slot, idx))
                if self.arena[slot as usize]
                    .as_ref()
                    .is_some_and(|b| idx < b.instrs.len() && b.instrs[idx].pc == pc) =>
            {
                (slot, idx)
            }
            _ => {
                let s = self.starts[usize::from(pc)];
                if s != NO_BLOCK {
                    (s - 1, 0)
                } else if let Some(slot) = self.build_at(bus, pc) {
                    (slot, 0)
                } else {
                    self.cursor = None;
                    self.delegated += 1;
                    cpu.step(bus)?;
                    return Ok(());
                }
            }
        };
        let block = self.arena[slot as usize].as_ref().expect("validated slot");
        let di = &block.instrs[idx];
        let len = block.instrs.len();
        match exec_one(cpu, bus, di) {
            Ok(()) => {
                self.cursor = if cpu.pc() == di.next_pc && idx + 1 < len {
                    Some((slot, idx + 1))
                } else {
                    None
                };
                Ok(())
            }
            Err(e) => {
                self.cursor = None;
                Err(e)
            }
        }
    }

    /// Executes as many consecutive instructions of the current block as
    /// [`crate::machine::Machine::run`]'s polling permits, then returns.
    ///
    /// Only called when no fault plan or profiler is attached, so nothing
    /// outside the loop's own checks can observe instruction boundaries.
    /// Those checks are replicated inline after every instruction — stack
    /// floor, latched violation, halt port, code-write barrier, cycle
    /// budget — and the batch stops at the first instruction after which
    /// any of them would make the run loop act, leaving the machine in
    /// exactly the state per-instruction stepping would have. The barrier
    /// check additionally stops the batch when an instruction stores into
    /// watched code, so a self-modified block never executes stale
    /// successors (the next call drains it, same as [`BlockEngine::step`]).
    ///
    /// # Errors
    ///
    /// As [`BlockEngine::step`]: identical conditions and partial state to
    /// the interpreter, with every fully-executed prior instruction's
    /// effects committed.
    pub fn step_batched(&mut self, cpu: &mut Cpu, bus: &mut Bus, max_cycles: u64) -> SimResult<()> {
        if bus.sanitizer_epoch() != self.seen_epoch {
            self.reset(bus);
        }
        if bus.code_watch_gen() != self.seen_gen {
            self.drain(bus);
        }
        let pc = cpu.pc();
        let (slot, mut idx) = match self.cursor {
            Some((slot, idx))
                if self.arena[slot as usize]
                    .as_ref()
                    .is_some_and(|b| idx < b.instrs.len() && b.instrs[idx].pc == pc) =>
            {
                (slot, idx)
            }
            _ => {
                let s = self.starts[usize::from(pc)];
                if s != NO_BLOCK {
                    (s - 1, 0)
                } else if let Some(slot) = self.build_at(bus, pc) {
                    (slot, 0)
                } else {
                    self.cursor = None;
                    self.delegated += 1;
                    cpu.step(bus)?;
                    return Ok(());
                }
            }
        };
        let block = self.arena[slot as usize].as_ref().expect("validated slot");
        let len = block.instrs.len();
        // When the remaining cycle budget exceeds the block suffix's
        // worst-case cost, no per-instruction cycle check can fire before
        // the block ends, and — since every non-terminator instruction in
        // a block provably falls through (only terminators can write the
        // PC, and they are always last) — no fall-through check is needed
        // either. The hot path below therefore polls only what each
        // instruction can actually trip: nothing for no-poll instructions
        // (loads and pure ALU ops — see `DecodedInstr::poll`), the
        // stack/violation/halt/barrier set for the rest. The suffix bound
        // is monotonically decreasing, so once covered, always covered.
        if bus.stats().total_cycles() + u64::from(block.instrs[idx].worst_suffix) < max_cycles {
            while idx < len {
                let first = &block.instrs[idx];
                // A precomputed run of pure instructions: accounting is
                // applied from the static aggregate (plus one cache probe
                // per distinct fetch line); only the executions themselves
                // remain per-instruction.
                let rp = first.run;
                if rp.len >= 2 {
                    let n = usize::from(rp.len);
                    match first.plan {
                        Plan::SramPure => bus.add_sram_ifetch(u64::from(rp.words)),
                        _ => bus.account_fram_ifetch_run(first.pc, rp.words),
                    }
                    bus.stats_mut().contention_cycles += u64::from(rp.contention);
                    bus.charge_batch(first.cat, n as u64, u64::from(rp.unstalled));
                    for di in &block.instrs[idx..idx + n] {
                        cpu.set_pc(di.next_pc);
                        // Pure instructions cannot fault (register and
                        // immediate operands only); propagate defensively.
                        if let Err(e) = exec_lowered(cpu, bus, di) {
                            self.cursor = None;
                            return Err(e);
                        }
                    }
                    idx += n;
                    continue;
                }
                let di = first;
                if let Err(e) = exec_one(cpu, bus, di) {
                    self.cursor = None;
                    return Err(e);
                }
                if di.poll {
                    bus.check_stack(cpu.sp());
                    if bus.violation_pending()
                        || bus.ports().halt_code().is_some()
                        || bus.code_watch_gen() != self.seen_gen
                    {
                        let fell_through = cpu.pc() == di.next_pc && idx + 1 < len;
                        self.cursor = if fell_through && bus.code_watch_gen() == self.seen_gen {
                            Some((slot, idx + 1))
                        } else {
                            None
                        };
                        return Ok(());
                    }
                }
                idx += 1;
            }
            // Block exhausted: the last instruction was either a
            // terminator or the decode horizon; resume by block lookup.
            self.cursor = None;
            return Ok(());
        }
        // Near the cycle limit: exact per-instruction stepping with the
        // full poll set, so the batch stops on precisely the same
        // instruction boundary as the interpreter's run loop.
        loop {
            let di = &block.instrs[idx];
            if let Err(e) = exec_one(cpu, bus, di) {
                self.cursor = None;
                return Err(e);
            }
            let fell_through = cpu.pc() == di.next_pc && idx + 1 < len;
            bus.check_stack(cpu.sp());
            if !fell_through
                || bus.violation_pending()
                || bus.ports().halt_code().is_some()
                || bus.code_watch_gen() != self.seen_gen
                || bus.stats().total_cycles() >= max_cycles
            {
                self.cursor = if fell_through && bus.code_watch_gen() == self.seen_gen {
                    Some((slot, idx + 1))
                } else {
                    None
                };
                return Ok(());
            }
            idx += 1;
        }
    }

    fn build_at(&mut self, bus: &mut Bus, pc: u16) -> Option<u32> {
        let block = build_block(bus, pc)?;
        let slot = self.free.pop().unwrap_or_else(|| {
            self.arena.push(None);
            (self.arena.len() - 1) as u32
        });
        bus.code_watch_add(block.start, block.end);
        for g in granules(block.start, block.end) {
            let list = &mut self.granule_blocks[g];
            if !list.contains(&slot) {
                list.push(slot);
            }
        }
        self.starts[usize::from(pc)] = slot + 1;
        if slot as usize >= self.arena.len() {
            self.arena.resize_with(slot as usize + 1, || None);
        }
        self.arena[slot as usize] = Some(block);
        self.blocks_built += 1;
        Some(slot)
    }

    /// Precisely drops every block overlapping a write recorded since the
    /// last drain.
    fn drain(&mut self, bus: &mut Bus) {
        self.scratch.clear();
        bus.drain_code_dirty(&mut self.scratch);
        let writes = std::mem::take(&mut self.scratch);
        for &(addr, len) in &writes {
            let wstart = u32::from(addr);
            let wend = (wstart + len.max(1)).min(0x1_0000);
            self.candidates.clear();
            for g in granules(addr, wend) {
                for &slot in &self.granule_blocks[g] {
                    if !self.candidates.contains(&slot) {
                        self.candidates.push(slot);
                    }
                }
            }
            let candidates = std::mem::take(&mut self.candidates);
            for &slot in &candidates {
                let overlaps = self.arena[slot as usize]
                    .as_ref()
                    .is_some_and(|b| u32::from(b.start) < wend && b.end > wstart);
                if overlaps {
                    self.remove_block(bus, slot);
                    self.blocks_invalidated += 1;
                }
            }
            self.candidates = candidates;
        }
        self.scratch = writes;
        self.scratch.clear();
        self.cursor = None;
        self.seen_gen = bus.code_watch_gen();
    }

    fn remove_block(&mut self, bus: &mut Bus, slot: u32) {
        if let Some(b) = self.arena[slot as usize].take() {
            self.starts[usize::from(b.start)] = NO_BLOCK;
            bus.code_watch_remove(b.start, b.end);
            for g in granules(b.start, b.end) {
                self.granule_blocks[g].retain(|&s| s != slot);
            }
            self.free.push(slot);
        }
    }
}

impl Default for BlockEngine {
    fn default() -> Self {
        BlockEngine::new()
    }
}

/// Granule index range covering `[start, end)`.
fn granules(start: u16, end: u32) -> std::ops::RangeInclusive<usize> {
    let g0 = usize::from(start) >> GRANULE_SHIFT;
    let g1 = ((end.max(u32::from(start) + 1) - 1) >> GRANULE_SHIFT) as usize;
    g0..=g1
}

/// Executes a decoded instruction through its pre-lowered dispatch (see
/// [`ExecPlan`]); the caller must have advanced the PC past the fetch.
#[inline]
fn exec_lowered(cpu: &mut Cpu, bus: &mut Bus, di: &crate::decode::DecodedInstr) -> SimResult<()> {
    match di.exec {
        ExecPlan::AluImm { op, size, v, dst } => cpu.exec_alu_reg(op, size, v, dst),
        ExecPlan::AluReg { op, size, src, dst } => {
            let v = cpu.reg(src);
            cpu.exec_alu_reg(op, size, v, dst)
        }
        ExecPlan::Alu { op, size, src, dst } => cpu.exec_alu(bus, op, size, src, dst),
        ExecPlan::Fmt2Reg { op, size, dst } => cpu.exec_fmt2_reg(op, size, dst),
        ExecPlan::Push { size, src } => cpu.exec_push(bus, size, src),
        ExecPlan::Call { src } => cpu.exec_call(bus, src),
        ExecPlan::Reti => cpu.exec_reti(bus),
        ExecPlan::Jmp { op, offset } => {
            cpu.exec_jump(op, offset);
            Ok(())
        }
        ExecPlan::Generic => cpu.exec_decoded(bus, &di.instr),
    }
}

/// Dispatches one decoded instruction per its plan. Mirrors the accounting
/// sequence of [`Cpu::step`]: fetch accounting first, PC advanced past the
/// fetch, execution, then instruction/cycle attribution — so an execution
/// fault leaves identical partial state.
#[inline]
fn exec_one(cpu: &mut Cpu, bus: &mut Bus, di: &crate::decode::DecodedInstr) -> SimResult<()> {
    match di.plan {
        Plan::SramPure => {
            // No bus access is possible during execution and SRAM fetches
            // touch no FRAM line, so contention bookkeeping is skipped
            // entirely (begin/end would observe an empty line set).
            bus.add_sram_ifetch(u64::from(di.words));
            cpu.set_pc(di.next_pc);
            exec_lowered(cpu, bus, di)?;
            bus.charge_instr(di.cat, di.cycles);
            Ok(())
        }
        Plan::SramFast => {
            bus.begin_instruction();
            bus.add_sram_ifetch(u64::from(di.words));
            cpu.set_pc(di.next_pc);
            exec_lowered(cpu, bus, di)?;
            bus.charge_instr(di.cat, di.cycles);
            bus.end_instruction();
            Ok(())
        }
        Plan::FramFast => {
            bus.begin_instruction();
            bus.account_fram_ifetch_words(di.pc, di.words);
            cpu.set_pc(di.next_pc);
            exec_lowered(cpu, bus, di)?;
            bus.charge_instr(di.cat, di.cycles);
            bus.end_instruction();
            Ok(())
        }
        Plan::Replay => {
            bus.begin_instruction();
            for i in 0..di.words {
                bus.account_ifetch(di.pc.wrapping_add(2 * u16::from(i)))?;
            }
            cpu.set_pc(di.next_pc);
            exec_lowered(cpu, bus, di)?;
            bus.charge_instr(di.cat, di.cycles);
            bus.end_instruction();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::Frequency;
    use crate::hwcache::HwCache;
    use crate::isa::{Instr, Opcode, Operand, Reg, Size};
    use crate::mem::{Bus, MemoryMap};

    fn setup(instrs: &[Instr], base: u16) -> (Cpu, Bus, BlockEngine) {
        let mut bus = Bus::new(MemoryMap::fr2355(), HwCache::fr2355(), Frequency::MHZ_8);
        bus.enable_code_watch();
        let mut at = base;
        for i in instrs {
            for w in i.encode(at).unwrap() {
                bus.poke_word(at, w);
                at = at.wrapping_add(2);
            }
        }
        let mut cpu = Cpu::new();
        cpu.set_pc(base);
        cpu.set_sp(0x3000);
        let mut eng = BlockEngine::new();
        eng.reset(&mut bus);
        (cpu, bus, eng)
    }

    fn mov_imm(v: u16, r: Reg) -> Instr {
        Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Imm(v),
            dst: Operand::Reg(r),
        }
    }

    /// Interpreter and engine agree on a simple straight-line program,
    /// including every statistic.
    #[test]
    fn engine_matches_interpreter_stats() {
        let prog = [
            mov_imm(0x1234, Reg::R12),
            mov_imm(5, Reg::R13),
            Instr::FormatI {
                op: Opcode::Add,
                size: Size::Word,
                src: Operand::Reg(Reg::R12),
                dst: Operand::Reg(Reg::R13),
            },
            Instr::FormatI {
                op: Opcode::Mov,
                size: Size::Word,
                src: Operand::Reg(Reg::R13),
                dst: Operand::Absolute(0x2100),
            },
        ];
        let (mut c1, mut b1, mut eng) = setup(&prog, 0x4000);
        let (mut c2, mut b2, _) = setup(&prog, 0x4000);
        for _ in 0..prog.len() {
            eng.step(&mut c1, &mut b1).unwrap();
            c2.step(&mut b2).unwrap();
        }
        assert_eq!(b1.stats(), b2.stats());
        assert_eq!(c1.pc(), c2.pc());
        assert_eq!(c1.reg(Reg::R13), c2.reg(Reg::R13));
        assert_eq!(b1.peek_word(0x2100), b2.peek_word(0x2100));
    }

    /// A store into the currently-executing block invalidates it, and the
    /// rewritten bytes are executed on the next pass — same as re-fetching.
    #[test]
    fn self_modifying_store_invalidates() {
        // MOV #<encoding of MOV #8,R14>, &0x4006 ; then the word at 0x4006
        // executes. First pass stores, so the second instruction executed
        // must be the *new* bytes. (#8 is a constant-generator immediate,
        // so the patched instruction is a single word.)
        let patch = mov_imm(8, Reg::R14).encode(0x4006).unwrap();
        assert_eq!(patch.len(), 1);
        let patch_word = patch[0];
        let prog = [
            Instr::FormatI {
                op: Opcode::Mov,
                size: Size::Word,
                src: Operand::Imm(patch_word),
                dst: Operand::Absolute(0x4006),
            },
            // Placeholder at 0x4006 (1 word): MOV R12, R12 (a no-op).
            Instr::FormatI {
                op: Opcode::Mov,
                size: Size::Word,
                src: Operand::Reg(Reg::R12),
                dst: Operand::Reg(Reg::R12),
            },
        ];
        let (mut c1, mut b1, mut eng) = setup(&prog, 0x4000);
        // Warm the cache over both instructions, then rewind and re-run.
        let entry_invalidated = eng.blocks_invalidated();
        eng.step(&mut c1, &mut b1).unwrap(); // performs the store
        eng.step(&mut c1, &mut b1).unwrap(); // must execute the NEW word
        assert_eq!(c1.reg(Reg::R14), 8, "rewritten instruction must execute");
        assert!(eng.blocks_invalidated() > entry_invalidated);
    }

    /// Delegation: stepping at an undecodable PC behaves exactly like the
    /// interpreter (same error).
    #[test]
    fn undecodable_pc_delegates_with_identical_error() {
        let (mut c1, mut b1, mut eng) = setup(&[], 0x0000); // unmapped
        let (mut c2, mut b2, _) = setup(&[], 0x0000);
        let e1 = eng.step(&mut c1, &mut b1).unwrap_err();
        let e2 = c2.step(&mut b2).unwrap_err();
        assert_eq!(e1, e2);
        assert!(eng.delegated() >= 1);
    }

    /// Bit flips in cached code take effect (fault-injection path).
    #[test]
    fn flip_bit_in_cached_block_invalidates() {
        let prog = [mov_imm(1, Reg::R12), mov_imm(2, Reg::R13)];
        let (mut c1, mut b1, mut eng) = setup(&prog, 0x4000);
        eng.step(&mut c1, &mut b1).unwrap();
        assert!(eng.blocks_built() >= 1);
        // Flip a bit inside the block's second instruction (both MOVs use
        // constant-generator immediates, so they are one word each).
        b1.flip_bit(0x4002, 0);
        let inv = eng.blocks_invalidated();
        c1.set_pc(0x4000);
        eng.step(&mut c1, &mut b1).unwrap();
        assert!(eng.blocks_invalidated() > inv, "flip must invalidate the block");
    }
}
