//! Timer-interrupt controller: fire schedules and the pending-latch model.
//!
//! The MSP430FR2355 drives interrupts from hardware timer peripherals
//! through a vector table in high FRAM. The simulator models the parts the
//! caching-runtime experiments observe: a cycle-driven *fire schedule*
//! ([`IrqSchedule`]), a single pending latch with coalescing (a second
//! fire while one is already latched does not nest — exactly like a
//! maskable edge interrupt flag), SR-based masking through the `GIE` bit
//! ([`crate::cpu::FLAG_GIE`], set and cleared by the guest's `eint`/`dint`
//! instructions), and the 6-cycle hardware entry sequence (push PC, push
//! SR, clear SR, load the vector) performed by
//! [`crate::machine::Machine::run`] between instructions.
//!
//! The vector itself is host-initialised from the program image (the
//! builder resolves the `__isr_entry` symbol), standing in for the
//! FR2355's FRAM-resident vector table — see the substitution table in
//! DESIGN.md.
//!
//! Schedules are deterministic by construction: explicit cycle lists,
//! fixed periods, or seeded draws from [`crate::rng::SplitMix64`] — the
//! same discipline as [`crate::fault::FaultPlan`]. Cycle counts are
//! cumulative across power cycles (statistics model bench instruments),
//! so one schedule spans an entire multi-boot episode.

use crate::rng::SplitMix64;
use std::ops::Range;

/// When the timer fires, in cumulative machine cycles: a sorted burst of
/// one-shot events, optionally followed by (or combined with) a periodic
/// component that never runs dry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrqSchedule {
    /// One-shot fire cycles, sorted ascending.
    events: Vec<u64>,
    /// Cursor into `events`.
    next: usize,
    /// Period of the repeating component; 0 disables it.
    period: u64,
    /// Next cycle at which the periodic component fires.
    next_periodic: u64,
}

impl IrqSchedule {
    /// A purely periodic timer: fires at `phase`, `phase + period`, …
    ///
    /// A zero `period` is clamped to 1 (a free-running timer, not a dead
    /// one — "off" is expressed by not attaching a timer at all).
    pub fn periodic(period: u64, phase: u64) -> IrqSchedule {
        IrqSchedule {
            events: Vec::new(),
            next: 0,
            period: period.max(1),
            next_periodic: phase,
        }
    }

    /// One-shot events at the given cycles (deduplicated and sorted).
    pub fn at(mut events: Vec<u64>) -> IrqSchedule {
        events.sort_unstable();
        events.dedup();
        IrqSchedule { events, next: 0, period: 0, next_periodic: 0 }
    }

    /// One-shot events followed by a periodic tail starting at `from`:
    /// the shape the multi-task campaigns use — a seeded dense burst that
    /// stresses a specific window, then a steady beat so schedulers that
    /// *need* the timer for forward progress never starve.
    pub fn burst_then_periodic(events: Vec<u64>, period: u64, from: u64) -> IrqSchedule {
        let mut s = IrqSchedule::at(events);
        s.period = period.max(1);
        s.next_periodic = from;
        s
    }

    /// `count` seeded one-shot fires uniformly drawn from `window`
    /// (deduplicated, so the result may carry fewer events).
    pub fn seeded(seed: u64, count: usize, window: Range<u64>) -> IrqSchedule {
        let mut rng = SplitMix64::new(seed);
        let span = window.end.saturating_sub(window.start).max(1);
        let events = (0..count).map(|_| window.start + rng.below(span)).collect();
        IrqSchedule::at(events)
    }

    /// Number of one-shot events not yet reached.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Whether the schedule has a periodic component (and therefore never
    /// runs dry).
    pub fn is_periodic(&self) -> bool {
        self.period != 0
    }

    /// Advances past every fire at or before `cycle`, returning how many
    /// fires were reached. The caller (the bus pending latch) coalesces
    /// multiple fires into one pending interrupt.
    pub fn take_due(&mut self, cycle: u64) -> u64 {
        let mut due = 0u64;
        while self.next < self.events.len() && self.events[self.next] <= cycle {
            self.next += 1;
            due += 1;
        }
        if self.period != 0 {
            while self.next_periodic <= cycle {
                self.next_periodic += self.period;
                due += 1;
            }
        }
        due
    }
}

/// The simulated timer peripheral: a fire schedule, the interrupt vector
/// it requests, and the single pending latch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrqTimer {
    schedule: IrqSchedule,
    vector: u16,
    pending: bool,
}

impl IrqTimer {
    /// Creates a timer that requests `vector` on every schedule fire.
    pub fn new(schedule: IrqSchedule, vector: u16) -> IrqTimer {
        IrqTimer { schedule, vector, pending: false }
    }

    /// The interrupt vector (ISR entry address).
    pub fn vector(&self) -> u16 {
        self.vector
    }

    /// Whether an interrupt is latched and waiting for delivery.
    pub fn pending(&self) -> bool {
        self.pending
    }

    /// The fire schedule.
    pub fn schedule(&self) -> &IrqSchedule {
        &self.schedule
    }

    /// Latches every fire due at `cycle`; returns how many fires were
    /// *coalesced* into an already-pending (or just-latched) interrupt —
    /// i.e. fires that will not get their own delivery.
    pub fn latch_due(&mut self, cycle: u64) -> u64 {
        let due = self.schedule.take_due(cycle);
        if due == 0 {
            return 0;
        }
        if self.pending {
            due
        } else {
            self.pending = true;
            due - 1
        }
    }

    /// Clears the pending latch (delivery, or a power cycle — latched
    /// requests are volatile peripheral state and do not survive a
    /// reboot; the schedule's cursor does, because fire cycles are
    /// cumulative bench time).
    pub fn clear_pending(&mut self) {
        self.pending = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_fires_every_period() {
        let mut s = IrqSchedule::periodic(100, 50);
        assert_eq!(s.take_due(49), 0);
        assert_eq!(s.take_due(50), 1);
        assert_eq!(s.take_due(149), 0);
        assert_eq!(s.take_due(380), 3, "150, 250, 350");
        assert!(s.is_periodic());
    }

    #[test]
    fn one_shot_events_sorted_and_deduped() {
        let mut s = IrqSchedule::at(vec![30, 10, 30, 20]);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.take_due(10), 1);
        assert_eq!(s.take_due(25), 1);
        assert_eq!(s.take_due(1000), 1);
        assert_eq!(s.take_due(2000), 0, "burst schedules run dry");
        assert!(!s.is_periodic());
    }

    #[test]
    fn burst_then_periodic_never_runs_dry() {
        let mut s = IrqSchedule::burst_then_periodic(vec![5, 7], 100, 200);
        assert_eq!(s.take_due(10), 2);
        assert_eq!(s.take_due(199), 0);
        assert_eq!(s.take_due(200), 1);
        assert_eq!(s.take_due(10_000), 98);
    }

    #[test]
    fn seeded_is_deterministic_and_windowed() {
        let a = IrqSchedule::seeded(42, 16, 100..1000);
        let b = IrqSchedule::seeded(42, 16, 100..1000);
        let c = IrqSchedule::seeded(43, 16, 100..1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.events.iter().all(|&e| (100..1000).contains(&e)));
        assert!(a.events.windows(2).all(|w| w[0] < w[1]), "sorted unique");
    }

    #[test]
    fn latch_coalesces_multiple_fires() {
        let mut t = IrqTimer::new(IrqSchedule::at(vec![10, 20, 30]), 0x4400);
        assert_eq!(t.latch_due(5), 0);
        assert!(!t.pending());
        // Three fires reached at once: one pending interrupt, two coalesced.
        assert_eq!(t.latch_due(35), 2);
        assert!(t.pending());
        t.clear_pending();
        assert!(!t.pending());
        assert_eq!(t.latch_due(1000), 0, "schedule exhausted");
    }

    #[test]
    fn pending_latch_does_not_nest() {
        let mut t = IrqTimer::new(IrqSchedule::periodic(10, 10), 0x4400);
        assert_eq!(t.latch_due(10), 0);
        // A second fire while pending coalesces entirely.
        assert_eq!(t.latch_due(20), 1);
        assert!(t.pending());
    }
}
