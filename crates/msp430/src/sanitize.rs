//! Execution sanitizer: watchpoints that turn silent misexecution into
//! typed traps.
//!
//! A single flipped bit in cache metadata can divert control flow into
//! power-cleared SRAM, never-filled cache slots, or the middle of a data
//! section — and the simulated CPU will happily execute whatever bytes it
//! finds there. The sanitizer gives the [`crate::mem::Bus`] a set of
//! configurable watchpoints that flag those events the moment they happen:
//!
//! * **Wild jumps** — instruction fetch from outside the mapped code
//!   ranges (application text, the runtime handler window, the SRAM cache
//!   window).
//! * **Stale fetch** — instruction fetch from SRAM bytes that were
//!   power-cleared or never filled by the caching runtime.
//! * **Bad stores** — application stores into code or cache-metadata
//!   regions (an allow-list exempts the few metadata words the
//!   instrumented application writes itself, e.g. `__sr_fid` and the
//!   active counters).
//! * **Stack overflow** — the stack pointer growing below a configured
//!   floor (into the data section or the cache window).
//!
//! The first violation is latched; [`crate::machine::Machine::run`] polls
//! it after every step and exits with
//! [`crate::machine::ExitReason::SanitizerTrap`] instead of executing on.
//! Accesses made while a runtime hook is servicing a trap are exempt
//! (`runtime_mode`): the runtime is trusted — it legitimately fills cache
//! slots, rewrites metadata and replays handler fetches.
//!
//! The sanitizer is a verification oracle, not modeled hardware: it
//! charges no cycles and touches no [`crate::trace::Stats`], so enabling
//! it cannot perturb any measured number.

use crate::mem::AddrRange;

/// A latched sanitizer violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Violation {
    /// Instruction fetch from an address outside every executable range.
    WildJump {
        /// The offending fetch address.
        pc: u16,
    },
    /// Instruction fetch from tracked SRAM that was never filled since
    /// the last power cycle.
    StaleFetch {
        /// The offending fetch address.
        pc: u16,
    },
    /// Application store into a protected (code / metadata) range.
    BadStore {
        /// The offending store address.
        addr: u16,
    },
    /// Stack pointer dropped below the configured floor.
    StackOverflow {
        /// The stack pointer value observed.
        sp: u16,
        /// The configured floor.
        limit: u16,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::WildJump { pc } => write!(f, "wild jump to {pc:#06x}"),
            Violation::StaleFetch { pc } => {
                write!(f, "instruction fetch from unfilled SRAM at {pc:#06x}")
            }
            Violation::BadStore { addr } => {
                write!(f, "application store into protected region at {addr:#06x}")
            }
            Violation::StackOverflow { sp, limit } => {
                write!(f, "stack pointer {sp:#06x} below floor {limit:#06x}")
            }
        }
    }
}

/// Watchpoint configuration (see module docs).
#[derive(Debug, Clone, Default)]
pub struct SanitizerConfig {
    /// Ranges instruction fetch is allowed from.
    pub exec: Vec<AddrRange>,
    /// SRAM range with fill tracking: fetching a byte in this range that
    /// has not been written since the last power cycle is a
    /// [`Violation::StaleFetch`]. Must be a subset of an `exec` range to
    /// be reachable.
    pub tracked: Option<AddrRange>,
    /// Ranges application stores may not touch.
    pub protected: Vec<AddrRange>,
    /// Word addresses inside `protected` the application may write
    /// (instrumentation-planted metadata stores).
    pub store_allow: Vec<u16>,
    /// Floor for the stack pointer; `sp != 0 && sp < limit` is a
    /// [`Violation::StackOverflow`].
    pub stack_limit: Option<u16>,
}

/// The sanitizer state attached to a bus.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    cfg: SanitizerConfig,
    /// One flag per byte of `cfg.tracked`: written since last power-up?
    filled: Vec<bool>,
    runtime_mode: bool,
    violation: Option<Violation>,
}

impl Sanitizer {
    /// Creates a sanitizer from a watchpoint configuration.
    pub fn new(cfg: SanitizerConfig) -> Sanitizer {
        let filled = vec![false; cfg.tracked.map_or(0, |r| r.len() as usize)];
        Sanitizer { cfg, filled, runtime_mode: false, violation: None }
    }

    /// The active configuration.
    pub fn config(&self) -> &SanitizerConfig {
        &self.cfg
    }

    /// Enters/leaves trusted-runtime mode (checks suppressed while set).
    pub fn set_runtime_mode(&mut self, on: bool) {
        self.runtime_mode = on;
    }

    /// Whether trusted-runtime mode is active.
    pub fn runtime_mode(&self) -> bool {
        self.runtime_mode
    }

    /// Takes the latched violation, if any.
    pub fn take_violation(&mut self) -> Option<Violation> {
        self.violation.take()
    }

    /// The latched violation without clearing it.
    #[inline]
    pub fn violation(&self) -> Option<Violation> {
        self.violation
    }

    fn latch(&mut self, v: Violation) {
        if self.violation.is_none() {
            self.violation = Some(v);
        }
    }

    fn tracked_index(&self, addr: u16) -> Option<usize> {
        let r = self.cfg.tracked?;
        r.contains(addr).then(|| usize::from(addr - r.start))
    }

    /// Notes a write landing on `addr` (fill tracking; any originator).
    pub fn note_write(&mut self, addr: u16, len: u16) {
        for i in 0..len {
            if let Some(ix) = self.tracked_index(addr.wrapping_add(i)) {
                self.filled[ix] = true;
            }
        }
    }

    /// Checks an instruction fetch of `len` bytes at `pc`.
    pub fn check_ifetch(&mut self, pc: u16, len: u16) {
        if self.runtime_mode || self.violation.is_some() {
            return;
        }
        if !self.cfg.exec.iter().any(|r| r.contains(pc)) {
            self.latch(Violation::WildJump { pc });
            return;
        }
        for i in 0..len {
            if let Some(ix) = self.tracked_index(pc.wrapping_add(i)) {
                if !self.filled[ix] {
                    self.latch(Violation::StaleFetch { pc });
                    return;
                }
            }
        }
    }

    /// Whether [`Sanitizer::check_ifetch`]`(pc, len)` is guaranteed to be
    /// a no-op — now and on every future call until the next
    /// [`Sanitizer::power_cycle`] or sanitizer reattachment.
    ///
    /// Used by the pre-decoded engine to elide per-word fetch checks for
    /// cached blocks: `pc` must lie in an executable range (so no wild
    /// jump can latch) and every tracked byte of the fetch must already be
    /// filled. Fill flags only move `false → true` between power cycles,
    /// so a `true` answer stays valid; the engine drops its cache on
    /// power-cycle and reattachment, which are the only events that can
    /// reset them. Deliberately ignores `runtime_mode` and any latched
    /// violation — both suppress checks only transiently, so they must
    /// not license a permanent skip.
    pub fn can_skip_ifetch(&self, pc: u16, len: u16) -> bool {
        if !self.cfg.exec.iter().any(|r| r.contains(pc)) {
            return false;
        }
        (0..len).all(|i| {
            self.tracked_index(pc.wrapping_add(i)).is_none_or(|ix| self.filled[ix])
        })
    }

    /// Checks an application store at `addr`.
    pub fn check_store(&mut self, addr: u16) {
        if self.runtime_mode || self.violation.is_some() {
            return;
        }
        if self.cfg.protected.iter().any(|r| r.contains(addr))
            && !self.cfg.store_allow.contains(&(addr & !1))
        {
            self.latch(Violation::BadStore { addr });
        }
    }

    /// Checks the stack pointer against the configured floor.
    #[inline]
    pub fn check_stack(&mut self, sp: u16) {
        if self.runtime_mode || self.violation.is_some() {
            return;
        }
        if let Some(limit) = self.cfg.stack_limit {
            if sp != 0 && sp < limit {
                self.latch(Violation::StackOverflow { sp, limit });
            }
        }
    }

    /// Models power loss: fill tracking resets (SRAM cleared), any
    /// latched violation from the dying instant is dropped.
    pub fn power_cycle(&mut self) {
        self.filled.fill(false);
        self.violation = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SanitizerConfig {
        SanitizerConfig {
            exec: vec![AddrRange::new(0x4000, 0x8000), AddrRange::new(0x2800, 0x3000)],
            tracked: Some(AddrRange::new(0x2800, 0x3000)),
            protected: vec![AddrRange::new(0x4000, 0x8000), AddrRange::new(0xB000, 0xB100)],
            store_allow: vec![0xB002],
            stack_limit: Some(0x7000),
        }
    }

    #[test]
    fn wild_jump_latches_first_violation_only() {
        let mut s = Sanitizer::new(cfg());
        s.check_ifetch(0x9000, 2);
        s.check_ifetch(0x9004, 2);
        assert_eq!(s.violation(), Some(Violation::WildJump { pc: 0x9000 }));
        assert_eq!(s.take_violation(), Some(Violation::WildJump { pc: 0x9000 }));
        assert_eq!(s.take_violation(), None);
    }

    #[test]
    fn stale_fetch_until_filled() {
        let mut s = Sanitizer::new(cfg());
        s.check_ifetch(0x2800, 2);
        assert_eq!(s.take_violation(), Some(Violation::StaleFetch { pc: 0x2800 }));
        s.note_write(0x2800, 2);
        s.check_ifetch(0x2800, 2);
        assert_eq!(s.take_violation(), None);
        // A 2-byte fetch with only the first byte filled still trips.
        s.note_write(0x2900, 1);
        s.check_ifetch(0x2900, 2);
        assert_eq!(s.take_violation(), Some(Violation::StaleFetch { pc: 0x2900 }));
    }

    #[test]
    fn power_cycle_clears_fill_tracking() {
        let mut s = Sanitizer::new(cfg());
        s.note_write(0x2800, 2);
        s.power_cycle();
        s.check_ifetch(0x2800, 2);
        assert_eq!(s.take_violation(), Some(Violation::StaleFetch { pc: 0x2800 }));
    }

    #[test]
    fn protected_store_with_allow_list() {
        let mut s = Sanitizer::new(cfg());
        s.check_store(0xB002); // allowed word
        s.check_store(0xB003); // odd byte of the allowed word
        assert_eq!(s.violation(), None);
        s.check_store(0xB004);
        assert_eq!(s.take_violation(), Some(Violation::BadStore { addr: 0xB004 }));
        s.check_store(0x2000); // unprotected SRAM
        assert_eq!(s.violation(), None);
    }

    #[test]
    fn runtime_mode_suppresses_checks() {
        let mut s = Sanitizer::new(cfg());
        s.set_runtime_mode(true);
        s.check_ifetch(0x9000, 2);
        s.check_store(0x4000);
        s.check_stack(0x100);
        assert_eq!(s.violation(), None);
        s.set_runtime_mode(false);
        s.check_ifetch(0x9000, 2);
        assert!(s.violation().is_some());
    }

    #[test]
    fn stack_floor() {
        let mut s = Sanitizer::new(cfg());
        s.check_stack(0x7000);
        assert_eq!(s.violation(), None);
        s.check_stack(0); // uninitialised SP is exempt
        assert_eq!(s.violation(), None);
        s.check_stack(0x6FFE);
        assert_eq!(
            s.take_violation(),
            Some(Violation::StackOverflow { sp: 0x6FFE, limit: 0x7000 })
        );
    }
}
