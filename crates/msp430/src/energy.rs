//! Energy model for the simulated device.
//!
//! The paper measures whole-system energy with an oscilloscope across a
//! sense resistor; we have no board, so energy is integrated analytically
//! from the access mix the simulator counts exactly:
//!
//! ```text
//! E = cycles · E_core(f) + Σ_kind accesses_kind · E_kind
//! ```
//!
//! Constants are set from MSP430FR2355-class datasheet ballparks and are
//! deliberately conservative; the reproduction targets *relative* energy
//! (SwapRAM vs baseline), which depends on the access mix rather than the
//! absolute constants. All constants are public so experiments can perform
//! sensitivity sweeps (see `experiments::ablation`).

use crate::freq::Frequency;
use crate::trace::Stats;

/// Per-cycle and per-access energy constants, in picojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Core energy per cycle at 8 MHz (includes static draw amortised over
    /// the longer cycle — low frequencies are less efficient per cycle).
    pub core_pj_per_cycle_8mhz: f64,
    /// Core energy per cycle at 24 MHz (the most efficient operating point
    /// for the digital core, per the paper §5.4).
    pub core_pj_per_cycle_24mhz: f64,
    /// Energy per FRAM read access (instruction fetch or data read).
    pub fram_read_pj: f64,
    /// Energy per FRAM write access.
    pub fram_write_pj: f64,
    /// Energy per SRAM read access.
    pub sram_read_pj: f64,
    /// Energy per SRAM write access.
    pub sram_write_pj: f64,
    /// Energy per MMIO access.
    pub mmio_pj: f64,
}

impl EnergyModel {
    /// The default MSP430FR2355-class model.
    ///
    /// FRAM accesses cost roughly 4× an SRAM access (the FRAM array plus
    /// its sense amplifiers draw over twice the power of comparable flash
    /// during execution, §2.2); the 8 MHz core point is ~25 % less
    /// efficient per cycle than 24 MHz.
    pub fn fr2355() -> EnergyModel {
        EnergyModel {
            core_pj_per_cycle_8mhz: 510.0,
            core_pj_per_cycle_24mhz: 405.0,
            fram_read_pj: 120.0,
            fram_write_pj: 150.0,
            sram_read_pj: 30.0,
            sram_write_pj: 34.0,
            mmio_pj: 20.0,
        }
    }

    /// Core energy per cycle at `freq`, interpolated linearly between the
    /// two calibration points.
    pub fn core_pj_per_cycle(&self, freq: Frequency) -> f64 {
        let f = freq.mhz as f64;
        let (f0, e0) = (8.0, self.core_pj_per_cycle_8mhz);
        let (f1, e1) = (24.0, self.core_pj_per_cycle_24mhz);
        if f <= f0 {
            e0
        } else if f >= f1 {
            e1
        } else {
            e0 + (e1 - e0) * (f - f0) / (f1 - f0)
        }
    }

    /// Total energy in microjoules for an execution described by `stats` at
    /// `freq`. Stall cycles burn core energy like active cycles (the CPU
    /// waits, it does not sleep).
    pub fn energy_uj(&self, stats: &Stats, freq: Frequency) -> f64 {
        let core = stats.total_cycles() as f64 * self.core_pj_per_cycle(freq);
        let fram =
            (stats.fram_ifetch + stats.fram_read) as f64 * self.fram_read_pj
                + stats.fram_write as f64 * self.fram_write_pj;
        let sram = (stats.sram_ifetch + stats.sram_read) as f64 * self.sram_read_pj
            + stats.sram_write as f64 * self.sram_write_pj;
        let mmio = stats.mmio_accesses as f64 * self.mmio_pj;
        (core + fram + sram + mmio) / 1.0e6
    }

    /// Average power in milliwatts for an execution described by `stats`.
    pub fn average_power_mw(&self, stats: &Stats, freq: Frequency) -> f64 {
        let us = freq.cycles_to_us(stats.total_cycles());
        if us == 0.0 {
            0.0
        } else {
            self.energy_uj(stats, freq) / us * 1000.0
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::fr2355()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(fram_ifetch: u64, sram_ifetch: u64, cycles: u64) -> Stats {
        Stats { fram_ifetch, sram_ifetch, unstalled_cycles: cycles, ..Stats::new() }
    }

    #[test]
    fn fram_heavy_run_costs_more() {
        let m = EnergyModel::fr2355();
        let fram = stats_with(1000, 0, 2000);
        let sram = stats_with(0, 1000, 2000);
        assert!(m.energy_uj(&fram, Frequency::MHZ_24) > m.energy_uj(&sram, Frequency::MHZ_24));
    }

    #[test]
    fn interpolation_endpoints() {
        let m = EnergyModel::fr2355();
        assert_eq!(m.core_pj_per_cycle(Frequency::MHZ_8), m.core_pj_per_cycle_8mhz);
        assert_eq!(m.core_pj_per_cycle(Frequency::MHZ_24), m.core_pj_per_cycle_24mhz);
        let mid = m.core_pj_per_cycle(Frequency::MHZ_16);
        assert!(mid < m.core_pj_per_cycle_8mhz && mid > m.core_pj_per_cycle_24mhz);
    }

    #[test]
    fn stall_cycles_burn_energy() {
        let m = EnergyModel::fr2355();
        let mut a = stats_with(100, 0, 1000);
        let b = a.clone();
        a.wait_cycles = 500;
        assert!(m.energy_uj(&a, Frequency::MHZ_24) > m.energy_uj(&b, Frequency::MHZ_24));
    }

    #[test]
    fn average_power_is_finite_and_positive() {
        let m = EnergyModel::fr2355();
        let s = stats_with(10, 10, 100);
        let p = m.average_power_mw(&s, Frequency::MHZ_8);
        assert!(p > 0.0 && p.is_finite());
    }
}
