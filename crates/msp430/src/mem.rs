//! Memory map and system bus.
//!
//! The simulated device has a flat 16-bit address space split into SRAM,
//! FRAM, a memory-mapped I/O window and a trap window used by software
//! runtimes (see [`crate::machine::Hook`]). Every access goes through
//! [`Bus`], which:
//!
//! * categorises the access by region and kind into [`Stats`],
//! * runs FRAM reads through the hardware read cache and charges wait
//!   states on misses per the active [`Frequency`],
//! * charges the same-instruction FRAM line-contention penalty that makes
//!   unified-memory operation slow even at 8 MHz (paper §2.2), and
//! * routes MMIO traffic to the simulator [`Ports`].

use crate::error::{SimError, SimResult};
use crate::freq::Frequency;
use crate::hwcache::HwCache;
use crate::irq::IrqTimer;
use crate::ports::Ports;
use crate::sanitize::{Sanitizer, SanitizerConfig, Violation};
use crate::trace::{Category, Stats};

/// A half-open address range `[start, end)`. `end` is `u32` so a range may
/// extend to the top of the 16-bit address space (`end = 0x1_0000`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// First address in the range.
    pub start: u16,
    /// One past the last address (≤ `0x1_0000`).
    pub end: u32,
}

impl AddrRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or `end > 0x1_0000`.
    pub fn new(start: u16, end: u32) -> AddrRange {
        assert!(end >= u32::from(start) && end <= 0x1_0000, "invalid range");
        AddrRange { start, end }
    }

    /// Whether `addr` lies in the range.
    pub fn contains(&self, addr: u16) -> bool {
        u32::from(addr) >= u32::from(self.start) && u32::from(addr) < self.end
    }

    /// Size of the range in bytes.
    pub fn len(&self) -> u32 {
        self.end - u32::from(self.start)
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The memory region an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Volatile on-chip SRAM.
    Sram,
    /// Non-volatile FRAM (behind the hardware read cache and wait states).
    Fram,
    /// Memory-mapped I/O ports.
    Mmio,
    /// Runtime trap window (execute-only; see [`crate::machine::Hook`]).
    Trap,
    /// Unmapped address space.
    Unmapped,
}

/// The device memory map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryMap {
    /// SRAM range.
    pub sram: AddrRange,
    /// FRAM range.
    pub fram: AddrRange,
    /// MMIO window.
    pub mmio: AddrRange,
    /// Trap window.
    pub trap: AddrRange,
}

impl MemoryMap {
    /// The MSP430FR2355 map: 4 KiB SRAM at `0x2000`, 32 KiB FRAM at
    /// `0x4000`, MMIO at `0x0100`, trap window at `0x0F00`.
    pub fn fr2355() -> MemoryMap {
        MemoryMap {
            sram: AddrRange::new(0x2000, 0x3000),
            fram: AddrRange::new(0x4000, 0xC000),
            mmio: AddrRange::new(0x0100, 0x0200),
            trap: AddrRange::new(0x0F00, 0x1000),
        }
    }

    /// The region containing `addr`.
    pub fn region_of(&self, addr: u16) -> Region {
        if self.sram.contains(addr) {
            Region::Sram
        } else if self.fram.contains(addr) {
            Region::Fram
        } else if self.mmio.contains(addr) {
            Region::Mmio
        } else if self.trap.contains(addr) {
            Region::Trap
        } else {
            Region::Unmapped
        }
    }
}

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap::fr2355()
    }
}

/// The kind of a memory access, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction or extension-word fetch.
    IFetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

/// A contiguous chunk of a program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Load address.
    pub addr: u16,
    /// Raw bytes.
    pub bytes: Vec<u8>,
}

/// A loadable program image: segments plus the entry point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Image {
    /// Segments to copy into memory before reset.
    pub segments: Vec<Segment>,
    /// Initial program counter.
    pub entry: u16,
}

impl Image {
    /// Total bytes across all segments.
    pub fn size_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.bytes.len()).sum()
    }

    /// The little-endian word at `addr` in the image — the immutable
    /// ground truth integrity repairs rebuild metadata from.
    ///
    /// # Errors
    ///
    /// [`SimError::BusFault`] if the word is not covered by any segment
    /// (a malformed lookup is a typed error, not a panic).
    pub fn word_at(&self, addr: u16) -> SimResult<u16> {
        let a = usize::from(addr);
        for seg in &self.segments {
            let lo = usize::from(seg.addr);
            if a >= lo && a + 1 < lo + seg.bytes.len() {
                return Ok(u16::from(seg.bytes[a - lo])
                    | (u16::from(seg.bytes[a + 1 - lo]) << 8));
            }
        }
        Err(SimError::BusFault { addr, what: "address not in image".to_string() })
    }
}

/// Granule size (as a shift) of the code write barrier: the address space
/// is divided into 64-byte granules, each counting how many cached decoded
/// blocks overlap it.
const WATCH_SHIFT: u32 = 6;
/// Number of write-barrier granules covering the 16-bit address space.
const WATCH_GRANULES: usize = 0x1_0000 >> WATCH_SHIFT;

/// Write barrier backing the pre-decoded engine's invalidation contract
/// (see [`crate::blockcache`]): granules covered by at least one cached
/// block have a nonzero count, and every store landing in a covered granule
/// is recorded so the engine can invalidate exactly the blocks whose bytes
/// changed — whether the store came from executing code (SwapRAM rewriting
/// redirection words), a host-side poke, a bit-flip injection, or the SRAM
/// clear of a power cycle.
#[derive(Debug, Clone)]
struct CodeWatch {
    /// Per-granule count of cached blocks overlapping the granule.
    counts: Vec<u16>,
    /// Writes `(addr, len)` that hit a watched granule since the last
    /// drain.
    dirty: Vec<(u16, u32)>,
    /// Bumped on every recorded write so the engine can skip the drain
    /// entirely on the (overwhelmingly common) clean fast path.
    gen: u64,
}

impl CodeWatch {
    fn new() -> CodeWatch {
        CodeWatch { counts: vec![0; WATCH_GRANULES], dirty: Vec::new(), gen: 0 }
    }

    #[inline]
    fn note(&mut self, addr: u16, len: u32) {
        let end = (u32::from(addr) + len.max(1)).min(0x1_0000);
        let g0 = usize::from(addr) >> WATCH_SHIFT;
        let g1 = ((end - 1) as usize) >> WATCH_SHIFT;
        if self.counts[g0..=g1].iter().any(|&c| c > 0) {
            self.dirty.push((addr, len.max(1)));
            self.gen += 1;
        }
    }

    fn adjust(&mut self, start: u16, end: u32, delta: i32) {
        let g0 = usize::from(start) >> WATCH_SHIFT;
        let g1 = ((end.max(u32::from(start) + 1) - 1) as usize) >> WATCH_SHIFT;
        for c in &mut self.counts[g0..=g1] {
            *c = (i32::from(*c) + delta).max(0) as u16;
        }
    }
}

/// Distinct FRAM cache lines touched by one instruction, inline to avoid
/// heap traffic on the hot path. An instruction touches at most ~6
/// distinct lines (≤2 fetch, one per data operand word, ≤2 stack words),
/// so 8 slots exceed the architectural maximum; a hypothetical overflow
/// drops the line (debug-asserted) rather than reallocating.
#[derive(Debug, Clone)]
struct LineSet {
    lines: [u32; 8],
    len: u8,
    /// Whether an instruction bracket is open (see [`LineSet::insert`]).
    open: bool,
}

impl LineSet {
    fn new() -> LineSet {
        LineSet { lines: [0; 8], len: 0, open: false }
    }

    /// Opens a tracking bracket (instruction start).
    #[inline]
    fn begin(&mut self) {
        self.len = 0;
        self.open = true;
    }

    /// Closes the bracket (instruction end).
    #[inline]
    fn end(&mut self) {
        self.len = 0;
        self.open = false;
    }

    #[inline]
    fn len(&self) -> usize {
        usize::from(self.len)
    }

    #[inline]
    fn insert(&mut self, line: u32) {
        // Lines touched outside an instruction bracket (runtime hooks
        // copying code in `on_trap`) are never charged as contention —
        // the next `begin` would discard them anyway — so don't collect
        // them; a hook-side memcpy can touch far more than 8 lines.
        if !self.open || self.lines[..self.len()].contains(&line) {
            return;
        }
        debug_assert!(self.len() < 8, "instruction touched more than 8 distinct lines");
        if self.len() < 8 {
            self.lines[self.len()] = line;
            self.len += 1;
        }
    }
}

/// Per-256-byte-page region codes for [`Bus::region`]: [`Region`] as
/// `u8`, or [`PAGE_MIXED`] for a page containing a region boundary
/// (resolved by the full range compare).
const PAGE_MIXED: u8 = 5;

fn region_code(r: Region) -> u8 {
    match r {
        Region::Sram => 0,
        Region::Fram => 1,
        Region::Mmio => 2,
        Region::Trap => 3,
        Region::Unmapped => 4,
    }
}

fn region_pages(map: &MemoryMap) -> [u8; 256] {
    let mut pages = [0u8; 256];
    let bounds: [u32; 8] = [
        u32::from(map.sram.start),
        map.sram.end,
        u32::from(map.fram.start),
        map.fram.end,
        u32::from(map.mmio.start),
        map.mmio.end,
        u32::from(map.trap.start),
        map.trap.end,
    ];
    for (i, page) in pages.iter_mut().enumerate() {
        let start = (i as u32) << 8;
        let mixed = bounds.iter().any(|&b| b > start && b < start + 256);
        *page = if mixed {
            PAGE_MIXED
        } else {
            region_code(map.region_of(start as u16))
        };
    }
    pages
}

/// The system bus: backing store, hardware cache, wait-state accounting and
/// access statistics.
#[derive(Debug, Clone)]
pub struct Bus {
    map: MemoryMap,
    /// Page-granular region lookup table derived from `map`.
    pages: [u8; 256],
    mem: Vec<u8>,
    cache: HwCache,
    freq: Frequency,
    stats: Stats,
    ports: Ports,
    /// Distinct FRAM cache lines touched by the instruction in flight.
    instr_lines: LineSet,
    /// Optional execution sanitizer (see [`crate::sanitize`]).
    sanitizer: Option<Box<Sanitizer>>,
    /// Write barrier for the pre-decoded engine (None = no engine attached).
    code_watch: Option<Box<CodeWatch>>,
    /// Bumped whenever a sanitizer is (re)attached: a new sanitizer resets
    /// fill tracking, so the engine must drop blocks built under the old
    /// one's skip analysis.
    sanitizer_epoch: u64,
    /// Optional timer-interrupt controller (see [`crate::irq`]).
    timer: Option<Box<IrqTimer>>,
    /// Set by [`crate::cpu::Cpu::exec_reti`]; the run loop takes it to
    /// observe interrupt-return boundaries regardless of engine.
    reti_seen: bool,
    /// Non-volatile I/O journal: tagged snapshots of the port state, keyed
    /// by an FRAM anchor address. Models a checkpointing runtime logging
    /// its output-channel state (console bytes, checksum accumulator) to
    /// NVRAM alongside a resume frame, so replayed I/O after a power loss
    /// is exactly-once. Survives [`Bus::power_cycle`] like FRAM.
    nv_ports: std::collections::BTreeMap<u16, (u16, Ports)>,
}

impl Bus {
    /// Creates a bus over `map` with the given hardware cache and clock.
    pub fn new(map: MemoryMap, cache: HwCache, freq: Frequency) -> Bus {
        Bus {
            map,
            pages: region_pages(&map),
            mem: vec![0u8; 0x1_0000],
            cache,
            freq,
            stats: Stats::new(),
            ports: Ports::new(),
            instr_lines: LineSet::new(),
            sanitizer: None,
            code_watch: None,
            sanitizer_epoch: 0,
            timer: None,
            reti_seen: false,
            nv_ports: std::collections::BTreeMap::new(),
        }
    }

    /// The region containing `addr` — the page-table fast path of
    /// [`MemoryMap::region_of`].
    #[inline]
    fn region(&self, addr: u16) -> Region {
        match self.pages[usize::from(addr >> 8)] {
            0 => Region::Sram,
            1 => Region::Fram,
            2 => Region::Mmio,
            3 => Region::Trap,
            4 => Region::Unmapped,
            _ => self.map.region_of(addr),
        }
    }

    /// Attaches an execution sanitizer, replacing any previous one.
    pub fn attach_sanitizer(&mut self, cfg: SanitizerConfig) {
        self.sanitizer = Some(Box::new(Sanitizer::new(cfg)));
        self.sanitizer_epoch += 1;
    }

    /// Generation counter of sanitizer attachments (see `sanitizer_epoch`
    /// field docs).
    #[inline]
    pub(crate) fn sanitizer_epoch(&self) -> u64 {
        self.sanitizer_epoch
    }

    /// Enables the code write barrier (idempotent; keeps existing state).
    pub(crate) fn enable_code_watch(&mut self) {
        if self.code_watch.is_none() {
            self.code_watch = Some(Box::new(CodeWatch::new()));
        }
    }

    /// Drops all write-barrier state (granule counts and pending dirt).
    pub(crate) fn clear_code_watch(&mut self) {
        if let Some(w) = &mut self.code_watch {
            let gen = w.gen;
            **w = CodeWatch::new();
            w.gen = gen;
        }
    }

    /// Current write-barrier generation; unchanged means no watched granule
    /// was written since the engine last drained.
    #[inline]
    pub(crate) fn code_watch_gen(&self) -> u64 {
        self.code_watch.as_ref().map_or(0, |w| w.gen)
    }

    /// Registers a cached block's byte range with the barrier.
    pub(crate) fn code_watch_add(&mut self, start: u16, end: u32) {
        if let Some(w) = &mut self.code_watch {
            w.adjust(start, end, 1);
        }
    }

    /// Unregisters a cached block's byte range.
    pub(crate) fn code_watch_remove(&mut self, start: u16, end: u32) {
        if let Some(w) = &mut self.code_watch {
            w.adjust(start, end, -1);
        }
    }

    /// Moves the pending dirty-write list into `out` (appending).
    pub(crate) fn drain_code_dirty(&mut self, out: &mut Vec<(u16, u32)>) {
        if let Some(w) = &mut self.code_watch {
            out.append(&mut w.dirty);
        }
    }

    #[inline]
    fn note_code_write(&mut self, addr: u16, len: u32) {
        if let Some(w) = &mut self.code_watch {
            w.note(addr, len);
        }
    }

    /// The attached sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&Sanitizer> {
        self.sanitizer.as_deref()
    }

    /// Attaches (or replaces) the timer-interrupt controller.
    pub fn attach_timer(&mut self, timer: IrqTimer) {
        self.timer = Some(Box::new(timer));
    }

    /// Detaches the timer-interrupt controller, returning it.
    pub fn detach_timer(&mut self) -> Option<IrqTimer> {
        self.timer.take().map(|t| *t)
    }

    /// The attached timer, if any.
    #[inline]
    pub fn timer(&self) -> Option<&IrqTimer> {
        self.timer.as_deref()
    }

    /// Latches any timer fires due at the current cumulative cycle count,
    /// coalescing multiple fires into the single pending latch.
    pub fn poll_timer(&mut self) {
        let cycle = self.stats.total_cycles();
        if let Some(t) = &mut self.timer {
            self.stats.irq_coalesced += t.latch_due(cycle);
        }
    }

    /// Whether a timer interrupt is latched awaiting delivery.
    #[inline]
    pub fn irq_pending(&self) -> bool {
        self.timer.as_ref().is_some_and(|t| t.pending())
    }

    /// Clears the pending latch (the interrupt was delivered).
    pub fn clear_irq_pending(&mut self) {
        if let Some(t) = &mut self.timer {
            t.clear_pending();
        }
    }

    /// Records that a `reti` executed (called from the CPU core so both
    /// engines report through the same path).
    #[inline]
    pub(crate) fn note_reti(&mut self) {
        self.reti_seen = true;
    }

    /// Takes the interrupt-return flag set by the last `reti`.
    #[inline]
    pub fn take_reti(&mut self) -> bool {
        std::mem::take(&mut self.reti_seen)
    }

    /// Enters/leaves trusted-runtime mode: sanitizer checks are suppressed
    /// while a runtime hook services a trap.
    pub fn set_runtime_mode(&mut self, on: bool) {
        if let Some(s) = &mut self.sanitizer {
            s.set_runtime_mode(on);
        }
    }

    /// Takes the latched sanitizer violation, if any.
    pub fn take_violation(&mut self) -> Option<Violation> {
        self.sanitizer.as_mut()?.take_violation()
    }

    /// Whether a sanitizer violation is latched, without consuming it.
    /// Lets the batched engine stop at the same instruction the run
    /// loop's `take_violation` poll would have.
    #[inline]
    pub fn violation_pending(&self) -> bool {
        self.sanitizer.as_ref().is_some_and(|s| s.violation().is_some())
    }

    /// Checks the stack pointer against the sanitizer's configured floor.
    #[inline]
    pub fn check_stack(&mut self, sp: u16) {
        if let Some(s) = &mut self.sanitizer {
            s.check_stack(sp);
        }
    }

    /// The memory map.
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// The active clock/wait-state profile.
    #[inline]
    pub fn freq(&self) -> Frequency {
        self.freq
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable statistics (used by runtimes to charge modeled work).
    #[inline]
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Simulator port state.
    #[inline]
    pub fn ports(&self) -> &Ports {
        &self.ports
    }

    /// Snapshots the current port state into the non-volatile I/O journal
    /// under `key` (an FRAM anchor address, e.g. a checkpoint slot) with a
    /// caller-chosen `tag` (e.g. a checkpoint generation). Overwrites any
    /// previous snapshot under the same key.
    pub fn nv_stash_ports(&mut self, key: u16, tag: u16) {
        self.nv_ports.insert(key, (tag, self.ports.clone()));
    }

    /// The tag of the journalled port snapshot under `key`, if any.
    pub fn nv_stashed_tag(&self, key: u16) -> Option<u16> {
        self.nv_ports.get(&key).map(|(tag, _)| *tag)
    }

    /// Restores the port state from the journalled snapshot under `key`,
    /// provided its tag matches (a mismatch means the snapshot belongs to
    /// a different checkpoint generation and must not be replayed).
    /// Returns whether the restore happened.
    pub fn nv_restore_ports(&mut self, key: u16, tag: u16) -> bool {
        match self.nv_ports.get(&key) {
            Some((t, snap)) if *t == tag => {
                self.ports = snap.clone();
                true
            }
            _ => false,
        }
    }

    /// Drops the journalled port snapshot under `key`, if any.
    pub fn nv_discard_ports(&mut self, key: u16) {
        self.nv_ports.remove(&key);
    }

    /// The hardware cache (for inspection in tests/ablations).
    pub fn hw_cache(&self) -> &HwCache {
        &self.cache
    }

    /// Marks the start of an instruction for contention accounting.
    #[inline]
    pub fn begin_instruction(&mut self) {
        self.instr_lines.begin();
    }

    /// Marks the end of an instruction: every distinct FRAM line beyond the
    /// first touched during the instruction costs one contention stall
    /// cycle (the cache serves one line per cycle; §2.2 of the paper).
    #[inline]
    pub fn end_instruction(&mut self) {
        if self.instr_lines.len() > 1 {
            self.stats.contention_cycles += (self.instr_lines.len() - 1) as u64;
        }
        self.instr_lines.end();
    }

    #[inline]
    fn note_fram_access(&mut self, addr: u16, is_read: bool) {
        let line = self.cache.line_of(addr);
        self.instr_lines.insert(line);
        if is_read {
            if self.cache.access_line(line) {
                self.stats.hw_cache_hits += 1;
            } else {
                self.stats.hw_cache_misses += 1;
                self.stats.wait_cycles += u64::from(self.freq.fram_wait_cycles);
            }
        } else {
            self.cache.invalidate(addr);
            self.stats.wait_cycles += u64::from(self.freq.fram_wait_cycles);
        }
    }

    fn fault(&self, addr: u16, what: &str) -> SimError {
        SimError::BusFault { addr, what: what.to_string() }
    }

    /// Reads a byte with full accounting.
    ///
    /// # Errors
    ///
    /// Faults on unmapped or trap-window addresses.
    #[inline]
    pub fn read_byte(&mut self, addr: u16, kind: AccessKind) -> SimResult<u8> {
        if kind == AccessKind::IFetch {
            if let Some(s) = &mut self.sanitizer {
                s.check_ifetch(addr, 1);
            }
        }
        match self.region(addr) {
            Region::Sram => {
                self.count(Region::Sram, kind);
                Ok(self.mem[usize::from(addr)])
            }
            Region::Fram => {
                self.count(Region::Fram, kind);
                self.note_fram_access(addr, true);
                Ok(self.mem[usize::from(addr)])
            }
            Region::Mmio => {
                self.stats.mmio_accesses += 1;
                Ok((self.ports.read(addr) & 0xff) as u8)
            }
            Region::Trap => Err(self.fault(addr, "read from trap window")),
            Region::Unmapped => Err(self.fault(addr, "read from unmapped memory")),
        }
    }

    /// Reads a word with full accounting.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses; errors on odd `addr`.
    #[inline]
    pub fn read_word(&mut self, addr: u16, kind: AccessKind) -> SimResult<u16> {
        if kind == AccessKind::IFetch {
            if let Some(s) = &mut self.sanitizer {
                s.check_ifetch(addr, 2);
            }
        }
        if addr & 1 != 0 {
            return Err(SimError::Unaligned(addr));
        }
        match self.region(addr) {
            Region::Sram => {
                self.count(Region::Sram, kind);
                Ok(self.raw_word(addr))
            }
            Region::Fram => {
                self.count(Region::Fram, kind);
                self.note_fram_access(addr, true);
                Ok(self.raw_word(addr))
            }
            Region::Mmio => {
                self.stats.mmio_accesses += 1;
                Ok(self.ports.read(addr))
            }
            Region::Trap => Err(self.fault(addr, "read from trap window")),
            Region::Unmapped => Err(self.fault(addr, "read from unmapped memory")),
        }
    }

    /// Whether `[start, end)` lies entirely in FRAM.
    pub fn fram_contains(&self, start: u16, end: u32) -> bool {
        u32::from(start) >= u32::from(self.map.fram.start) && end <= self.map.fram.end
    }

    /// Accounting for one modeled instruction-fetch word from FRAM, for
    /// runtime hooks that charge handler fetch traffic in a tight loop:
    /// exactly `begin_instruction` + `read_word(addr, IFetch)` +
    /// `end_instruction` for an even FRAM address (the value is
    /// discarded, and a single line can never incur same-instruction
    /// contention), minus the per-call region/linetracking overhead.
    /// Callers must pre-check evenness and FRAM residency (see
    /// [`Bus::fram_contains`]) and clear the line set once around the
    /// loop.
    #[inline]
    pub fn ifetch_fram_word_modeled(&mut self, addr: u16) {
        if let Some(s) = &mut self.sanitizer {
            s.check_ifetch(addr, 2);
        }
        self.stats.fram_ifetch += 1;
        if self.cache.access_read(addr) {
            self.stats.hw_cache_hits += 1;
        } else {
            self.stats.hw_cache_misses += 1;
            self.stats.wait_cycles += u64::from(self.freq.fram_wait_cycles);
        }
    }

    /// [`Bus::read_word`] specialised to `AccessKind::Read` — the
    /// executor data path, small enough to inline into operand reads.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses; errors on odd `addr`.
    #[inline]
    pub fn read_word_data(&mut self, addr: u16) -> SimResult<u16> {
        if addr & 1 != 0 {
            return Err(SimError::Unaligned(addr));
        }
        match self.region(addr) {
            Region::Sram => {
                self.stats.sram_read += 1;
                Ok(self.raw_word(addr))
            }
            Region::Fram => {
                self.stats.fram_read += 1;
                self.note_fram_access(addr, true);
                Ok(self.raw_word(addr))
            }
            _ => self.read_word(addr, AccessKind::Read),
        }
    }

    /// [`Bus::read_byte`] specialised to `AccessKind::Read`.
    ///
    /// # Errors
    ///
    /// Faults on unmapped or trap-window addresses.
    #[inline]
    pub fn read_byte_data(&mut self, addr: u16) -> SimResult<u8> {
        match self.region(addr) {
            Region::Sram => {
                self.stats.sram_read += 1;
                Ok(self.mem[usize::from(addr)])
            }
            Region::Fram => {
                self.stats.fram_read += 1;
                self.note_fram_access(addr, true);
                Ok(self.mem[usize::from(addr)])
            }
            _ => self.read_byte(addr, AccessKind::Read),
        }
    }

    /// Writes a byte with full accounting.
    ///
    /// # Errors
    ///
    /// Faults on unmapped or trap-window addresses.
    #[inline]
    pub fn write_byte(&mut self, addr: u16, value: u8) -> SimResult<()> {
        if let Some(s) = &mut self.sanitizer {
            s.check_store(addr);
            s.note_write(addr, 1);
        }
        match self.region(addr) {
            Region::Sram => {
                self.count(Region::Sram, AccessKind::Write);
                self.note_code_write(addr, 1);
                self.mem[usize::from(addr)] = value;
                Ok(())
            }
            Region::Fram => {
                self.count(Region::Fram, AccessKind::Write);
                self.note_fram_access(addr, false);
                self.note_code_write(addr, 1);
                self.mem[usize::from(addr)] = value;
                Ok(())
            }
            Region::Mmio => {
                self.stats.mmio_accesses += 1;
                let cycle = self.stats.total_cycles();
                self.ports.write(addr, u16::from(value), cycle);
                Ok(())
            }
            Region::Trap => Err(self.fault(addr, "write to trap window")),
            Region::Unmapped => Err(self.fault(addr, "write to unmapped memory")),
        }
    }

    /// Writes a word with full accounting.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses; errors on odd `addr`.
    #[inline]
    pub fn write_word(&mut self, addr: u16, value: u16) -> SimResult<()> {
        if let Some(s) = &mut self.sanitizer {
            s.check_store(addr);
            s.note_write(addr, 2);
        }
        if addr & 1 != 0 {
            return Err(SimError::Unaligned(addr));
        }
        match self.region(addr) {
            Region::Sram => {
                self.count(Region::Sram, AccessKind::Write);
                self.note_code_write(addr, 2);
                self.set_raw_word(addr, value);
                Ok(())
            }
            Region::Fram => {
                self.count(Region::Fram, AccessKind::Write);
                self.note_fram_access(addr, false);
                self.note_code_write(addr, 2);
                self.set_raw_word(addr, value);
                Ok(())
            }
            Region::Mmio => {
                self.stats.mmio_accesses += 1;
                let cycle = self.stats.total_cycles();
                self.ports.write(addr, value, cycle);
                Ok(())
            }
            Region::Trap => Err(self.fault(addr, "write to trap window")),
            Region::Unmapped => Err(self.fault(addr, "write to unmapped memory")),
        }
    }

    #[inline]
    fn count(&mut self, region: Region, kind: AccessKind) {
        match (region, kind) {
            (Region::Sram, AccessKind::IFetch) => self.stats.sram_ifetch += 1,
            (Region::Sram, AccessKind::Read) => self.stats.sram_read += 1,
            (Region::Sram, AccessKind::Write) => self.stats.sram_write += 1,
            (Region::Fram, AccessKind::IFetch) => self.stats.fram_ifetch += 1,
            (Region::Fram, AccessKind::Read) => self.stats.fram_read += 1,
            (Region::Fram, AccessKind::Write) => self.stats.fram_write += 1,
            _ => {}
        }
    }

    fn raw_word(&self, addr: u16) -> u16 {
        u16::from(self.mem[usize::from(addr)])
            | (u16::from(self.mem[usize::from(addr) + 1]) << 8)
    }

    fn set_raw_word(&mut self, addr: u16, value: u16) {
        self.mem[usize::from(addr)] = (value & 0xff) as u8;
        self.mem[usize::from(addr) + 1] = (value >> 8) as u8;
    }

    /// Host-side read without accounting or faulting (returns 0 for the top
    /// byte of a wrap-around access).
    pub fn peek_byte(&self, addr: u16) -> u8 {
        self.mem[usize::from(addr)]
    }

    /// Host-side word read without accounting (the address is rounded down
    /// to the containing word).
    pub fn peek_word(&self, addr: u16) -> u16 {
        self.raw_word(addr & !1)
    }

    /// Host-side write without accounting (used to load images and inject
    /// benchmark inputs).
    pub fn poke_byte(&mut self, addr: u16, value: u8) {
        if let Some(s) = &mut self.sanitizer {
            s.note_write(addr, 1);
        }
        self.note_code_write(addr, 1);
        self.mem[usize::from(addr)] = value;
    }

    /// Host-side word write without accounting.
    pub fn poke_word(&mut self, addr: u16, value: u16) {
        if let Some(s) = &mut self.sanitizer {
            s.note_write(addr & !1, 2);
        }
        self.note_code_write(addr & !1, 2);
        self.set_raw_word(addr & !1, value);
    }

    /// Copies `image` into memory (host-side, no accounting).
    ///
    /// # Errors
    ///
    /// Faults if a segment extends past the top of the 16-bit address
    /// space instead of corrupting low memory or panicking.
    pub fn load_image(&mut self, image: &Image) -> SimResult<()> {
        for seg in &image.segments {
            let start = usize::from(seg.addr);
            let end = start + seg.bytes.len();
            if end > self.mem.len() {
                return Err(self.fault(seg.addr, "image segment overflows address space"));
            }
            self.mem[start..end].copy_from_slice(&seg.bytes);
            if let Some(s) = &mut self.sanitizer {
                s.note_write(seg.addr, seg.bytes.len() as u16);
            }
            self.note_code_write(seg.addr, seg.bytes.len() as u32);
        }
        Ok(())
    }

    /// Models a power loss: volatile state (SRAM contents, the hardware
    /// read cache, simulator port state, in-flight contention tracking)
    /// is lost while FRAM contents persist. Statistics are *kept* — they
    /// model the experimenter's bench instruments, not on-chip state, so
    /// cycle counts stay monotonic across reboots and fault schedules can
    /// use cumulative cycles.
    pub fn power_cycle(&mut self) {
        let sram = self.map.sram;
        self.note_code_write(sram.start, sram.len());
        self.mem[usize::from(sram.start)..sram.end as usize].fill(0);
        self.cache.flush();
        self.ports = Ports::new();
        self.instr_lines.end();
        if let Some(s) = &mut self.sanitizer {
            s.power_cycle();
        }
        // A latched-but-undelivered interrupt request is volatile
        // peripheral state: it dies with the power. The fire schedule's
        // cursor survives because it is keyed on cumulative bench cycles,
        // like the fault plans.
        if let Some(t) = &mut self.timer {
            t.clear_pending();
        }
        self.reti_seen = false;
        // `nv_ports` deliberately survives: it models an FRAM-resident
        // I/O journal written by a checkpointing runtime.
    }

    /// Flips bit `bit` (0–7) of the byte at `addr` — a silent fault
    /// injection, no accounting. Flips in FRAM invalidate the covering
    /// hardware cache line so the corruption is observable.
    pub fn flip_bit(&mut self, addr: u16, bit: u8) {
        self.note_code_write(addr, 1);
        self.mem[usize::from(addr)] ^= 1 << (bit & 7);
        if self.region(addr) == Region::Fram {
            self.cache.invalidate(addr);
        }
    }

    /// Charges the accounting of a word-sized instruction fetch at `addr`
    /// without returning data — the pre-decoded engine's replacement for
    /// [`Bus::read_word`]`(addr, IFetch)` when replaying a cached block.
    /// Mirrors its observable behaviour exactly: sanitizer check first,
    /// then alignment, then per-region counters, hardware-cache state and
    /// wait/contention effects (or the identical fault).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Bus::read_word`].
    pub(crate) fn account_ifetch(&mut self, addr: u16) -> SimResult<()> {
        if let Some(s) = &mut self.sanitizer {
            s.check_ifetch(addr, 2);
        }
        if addr & 1 != 0 {
            return Err(SimError::Unaligned(addr));
        }
        match self.region(addr) {
            Region::Sram => {
                self.count(Region::Sram, AccessKind::IFetch);
                Ok(())
            }
            Region::Fram => {
                self.count(Region::Fram, AccessKind::IFetch);
                self.note_fram_access(addr, true);
                Ok(())
            }
            Region::Mmio => {
                self.stats.mmio_accesses += 1;
                Ok(())
            }
            Region::Trap => Err(self.fault(addr, "read from trap window")),
            Region::Unmapped => Err(self.fault(addr, "read from unmapped memory")),
        }
    }

    /// Disables the code write barrier entirely.
    pub(crate) fn disable_code_watch(&mut self) {
        self.code_watch = None;
    }

    /// Batched SRAM instruction-fetch accounting: `n` word fetches with no
    /// stall, cache or contention effects (SRAM fetches have none).
    #[inline]
    pub(crate) fn add_sram_ifetch(&mut self, n: u64) {
        self.stats.sram_ifetch += n;
    }

    /// Charges one executed instruction in `cat` plus its unstalled cycles
    /// — the tail accounting of [`crate::cpu::Cpu::step`], factored out for
    /// the pre-decoded engine.
    #[inline]
    pub(crate) fn charge_instr(&mut self, cat: Category, cycles: u32) {
        self.stats.count_instruction(cat);
        self.stats.unstalled_cycles += u64::from(cycles);
    }

    /// Charges `n` executed instructions in `cat` plus their summed
    /// unstalled cycles — the batched form of [`Bus::charge_instr`].
    #[inline]
    pub(crate) fn charge_batch(&mut self, cat: Category, n: u64, cycles: u64) {
        self.stats.instructions[cat.index()] += n;
        self.stats.unstalled_cycles += cycles;
    }

    /// FRAM instruction-fetch accounting for one decoded instruction's
    /// `words` contiguous fetch words at `pc`, with the sanitizer check
    /// elided — equivalent to `words` calls of
    /// [`Bus::account_fram_ifetch`] at consecutive addresses. The fetch
    /// words are accessed back-to-back before execution, so a repeat
    /// access to the line just probed is a guaranteed hit (a hit cannot
    /// evict); the cache is probed once per distinct line and the rest
    /// counted statically. Contention lines are still recorded per
    /// distinct line (execution may touch more lines afterwards).
    #[inline]
    pub(crate) fn account_fram_ifetch_words(&mut self, pc: u16, words: u8) {
        self.stats.fram_ifetch += u64::from(words);
        let words = u16::from(words);
        // The fetch words are contiguous and increasing, so the distinct
        // lines they touch are exactly the contiguous line range
        // `[line_of(pc), line_of(pc + 2*(words-1))]` — no per-word dedup
        // loop needed. Fetches that wrap the address space take the slow
        // path.
        let end = u32::from(pc) + 2 * (u32::from(words) - 1);
        if end > 0xFFFF {
            return self.account_fram_ifetch_wrapped(pc, words);
        }
        let first = self.cache.line_of(pc);
        let last = self.cache.line_of(end as u16);
        let lines = u64::from(last - first) + 1;
        for line in first..=last {
            self.instr_lines.insert(line);
            if self.cache.access_line(line) {
                self.stats.hw_cache_hits += 1;
            } else {
                self.stats.hw_cache_misses += 1;
                self.stats.wait_cycles += u64::from(self.freq.fram_wait_cycles);
            }
        }
        let rest = u64::from(words) - lines;
        if self.cache.is_enabled() {
            self.stats.hw_cache_hits += rest;
        } else {
            // A disabled cache misses every access (with no state touched).
            self.stats.hw_cache_misses += rest;
            self.stats.wait_cycles += rest * u64::from(self.freq.fram_wait_cycles);
        }
    }

    /// Batched FRAM instruction-fetch accounting for the contiguous word
    /// range `[start, start + 2*words)` of a pure straight-line run.
    ///
    /// Within such a run nothing but these monotonically increasing
    /// fetches touches the cache, so every repeat access to the line most
    /// recently probed is a guaranteed hit (a hit cannot evict): the cache
    /// is probed once per distinct line and the remaining word accesses
    /// are counted as hits statically. Skipping their LRU stamp updates is
    /// unobservable — consecutive same-line accesses leave the recency
    /// *order* of lines unchanged. A disabled cache misses every access
    /// without touching state, applied statically too. Same-instruction
    /// line contention is not charged here; the caller adds the
    /// statically-known spans (see [`crate::decode::RunPlan`]).
    pub(crate) fn account_fram_ifetch_run(&mut self, start: u16, words: u16) {
        self.stats.fram_ifetch += u64::from(words);
        if !self.cache.is_enabled() {
            self.stats.hw_cache_misses += u64::from(words);
            self.stats.wait_cycles +=
                u64::from(words) * u64::from(self.freq.fram_wait_cycles);
            return;
        }
        if words == 0 {
            return;
        }
        // As in `account_fram_ifetch_words`: contiguous increasing fetches
        // touch exactly the contiguous line range, probed in the same
        // order the per-word walk would have.
        let end = u32::from(start) + 2 * (u32::from(words) - 1);
        if end > 0xFFFF {
            return self.account_fram_ifetch_run_wrapped(start, words);
        }
        let first = self.cache.line_of(start);
        let last = self.cache.line_of(end as u16);
        let lines = u64::from(last - first) + 1;
        for line in first..=last {
            if self.cache.access_line(line) {
                self.stats.hw_cache_hits += 1;
            } else {
                self.stats.hw_cache_misses += 1;
                self.stats.wait_cycles += u64::from(self.freq.fram_wait_cycles);
            }
        }
        self.stats.hw_cache_hits += u64::from(words) - lines;
    }

    /// Slow path of [`Bus::account_fram_ifetch_words`] for the rare fetch
    /// range that wraps the 16-bit address space.
    #[cold]
    fn account_fram_ifetch_wrapped(&mut self, pc: u16, words: u16) {
        let mut lines = 0u64;
        let mut prev = u32::MAX;
        for i in 0..words {
            let addr = pc.wrapping_add(2 * i);
            let line = self.cache.line_of(addr);
            if line == prev {
                continue;
            }
            prev = line;
            lines += 1;
            self.instr_lines.insert(line);
            if self.cache.access_line(line) {
                self.stats.hw_cache_hits += 1;
            } else {
                self.stats.hw_cache_misses += 1;
                self.stats.wait_cycles += u64::from(self.freq.fram_wait_cycles);
            }
        }
        let rest = u64::from(words) - lines;
        if self.cache.is_enabled() {
            self.stats.hw_cache_hits += rest;
        } else {
            self.stats.hw_cache_misses += rest;
            self.stats.wait_cycles += rest * u64::from(self.freq.fram_wait_cycles);
        }
    }

    /// Slow path of [`Bus::account_fram_ifetch_run`] for the rare run that
    /// wraps the 16-bit address space.
    #[cold]
    fn account_fram_ifetch_run_wrapped(&mut self, start: u16, words: u16) {
        let mut lines = 0u64;
        let mut prev = u32::MAX;
        for i in 0..words {
            let addr = start.wrapping_add(2 * i);
            let line = self.cache.line_of(addr);
            if line != prev {
                prev = line;
                lines += 1;
                if self.cache.access_line(line) {
                    self.stats.hw_cache_hits += 1;
                } else {
                    self.stats.hw_cache_misses += 1;
                    self.stats.wait_cycles += u64::from(self.freq.fram_wait_cycles);
                }
            }
        }
        self.stats.hw_cache_hits += u64::from(words) - lines;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(freq: Frequency) -> Bus {
        Bus::new(MemoryMap::fr2355(), HwCache::fr2355(), freq)
    }

    #[test]
    fn region_classification() {
        let m = MemoryMap::fr2355();
        assert_eq!(m.region_of(0x2000), Region::Sram);
        assert_eq!(m.region_of(0x2FFF), Region::Sram);
        assert_eq!(m.region_of(0x4000), Region::Fram);
        assert_eq!(m.region_of(0xBFFF), Region::Fram);
        assert_eq!(m.region_of(0x0100), Region::Mmio);
        assert_eq!(m.region_of(0x0F00), Region::Trap);
        assert_eq!(m.region_of(0x0000), Region::Unmapped);
        assert_eq!(m.region_of(0xC000), Region::Unmapped);
    }

    #[test]
    fn sram_roundtrip_counts() {
        let mut b = bus(Frequency::MHZ_24);
        b.write_word(0x2000, 0xBEEF).unwrap();
        assert_eq!(b.read_word(0x2000, AccessKind::Read).unwrap(), 0xBEEF);
        assert_eq!(b.stats().sram_write, 1);
        assert_eq!(b.stats().sram_read, 1);
        assert_eq!(b.stats().wait_cycles, 0);
    }

    #[test]
    fn fram_miss_charges_wait_states_at_24mhz() {
        let mut b = bus(Frequency::MHZ_24);
        b.read_word(0x4000, AccessKind::IFetch).unwrap();
        assert_eq!(b.stats().wait_cycles, 3);
        assert_eq!(b.stats().hw_cache_misses, 1);
        // Same line: hit, no extra waits.
        b.read_word(0x4002, AccessKind::IFetch).unwrap();
        assert_eq!(b.stats().wait_cycles, 3);
        assert_eq!(b.stats().hw_cache_hits, 1);
    }

    #[test]
    fn fram_is_free_of_waits_at_8mhz() {
        let mut b = bus(Frequency::MHZ_8);
        b.read_word(0x4000, AccessKind::IFetch).unwrap();
        b.read_word(0x4100, AccessKind::Read).unwrap();
        assert_eq!(b.stats().wait_cycles, 0);
    }

    #[test]
    fn contention_penalty_for_multi_line_instructions() {
        let mut b = bus(Frequency::MHZ_8);
        b.begin_instruction();
        b.read_word(0x4000, AccessKind::IFetch).unwrap();
        b.read_word(0x4800, AccessKind::Read).unwrap(); // distant line
        b.end_instruction();
        assert_eq!(b.stats().contention_cycles, 1);
        // A single-line instruction adds nothing.
        b.begin_instruction();
        b.read_word(0x4002, AccessKind::IFetch).unwrap();
        b.end_instruction();
        assert_eq!(b.stats().contention_cycles, 1);
    }

    #[test]
    fn fram_write_invalidates_cache_line() {
        let mut b = bus(Frequency::MHZ_24);
        b.read_word(0x4000, AccessKind::Read).unwrap(); // fill
        b.write_word(0x4000, 1).unwrap(); // invalidate + wait
        let waits_before = b.stats().wait_cycles;
        b.read_word(0x4000, AccessKind::Read).unwrap(); // must miss again
        assert_eq!(b.stats().wait_cycles, waits_before + 3);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut b = bus(Frequency::MHZ_8);
        assert!(b.read_word(0xC000, AccessKind::Read).is_err());
        assert!(b.write_word(0x0F00, 0).is_err());
    }

    #[test]
    fn unaligned_word_access_rejected() {
        let mut b = bus(Frequency::MHZ_8);
        assert_eq!(b.read_word(0x2001, AccessKind::Read), Err(SimError::Unaligned(0x2001)));
    }

    #[test]
    fn mmio_write_reaches_ports() {
        let mut b = bus(Frequency::MHZ_8);
        b.write_word(crate::ports::HALT, 7).unwrap();
        assert_eq!(b.ports().halt_code(), Some(7));
        assert_eq!(b.stats().mmio_accesses, 1);
    }

    #[test]
    fn image_loading_is_silent() {
        let mut b = bus(Frequency::MHZ_8);
        let img = Image {
            segments: vec![Segment { addr: 0x4000, bytes: vec![0xAA, 0x55] }],
            entry: 0x4000,
        };
        b.load_image(&img).unwrap();
        assert_eq!(b.stats().fram_accesses(), 0);
        assert_eq!(b.peek_word(0x4000), 0x55AA);
    }

    #[test]
    fn overflowing_image_is_a_typed_fault() {
        let mut b = bus(Frequency::MHZ_8);
        let img = Image {
            segments: vec![Segment { addr: 0xFFFE, bytes: vec![1, 2, 3] }],
            entry: 0xFFFE,
        };
        assert!(matches!(b.load_image(&img), Err(SimError::BusFault { addr: 0xFFFE, .. })));
    }

    #[test]
    fn power_cycle_clears_sram_keeps_fram_and_stats() {
        let mut b = bus(Frequency::MHZ_24);
        b.write_word(0x2000, 0xBEEF).unwrap();
        b.write_word(0x4000, 0xCAFE).unwrap();
        b.read_word(0x4000, AccessKind::Read).unwrap(); // fill the cache line
        b.write_word(crate::ports::CHECKSUM, 0x1111).unwrap();
        let cycles = b.stats().total_cycles();
        b.power_cycle();
        assert_eq!(b.peek_word(0x2000), 0, "SRAM must clear");
        assert_eq!(b.peek_word(0x4000), 0xCAFE, "FRAM must persist");
        assert_eq!(b.ports().checksum().1, 0, "port state must reset");
        assert_eq!(b.stats().total_cycles(), cycles, "stats must survive");
        // The hardware cache was flushed: the next read of a previously
        // cached line misses again.
        b.read_word(0x4000, AccessKind::Read).unwrap();
        let misses = b.stats().hw_cache_misses;
        assert!(misses >= 2, "flush must force a re-miss (got {misses})");
    }

    #[test]
    fn flip_bit_corrupts_and_invalidates() {
        let mut b = bus(Frequency::MHZ_24);
        b.poke_word(0x4000, 0x0001);
        b.read_word(0x4000, AccessKind::Read).unwrap(); // cache the line
        b.flip_bit(0x4000, 0);
        assert_eq!(b.read_word(0x4000, AccessKind::Read).unwrap(), 0x0000);
        b.flip_bit(0x2000, 7);
        assert_eq!(b.peek_byte(0x2000), 0x80);
    }
}
