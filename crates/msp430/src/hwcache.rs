//! The hardware FRAM read cache.
//!
//! COTS FRAM microcontrollers place a small read cache between the CPU and
//! the FRAM array to hide wait states; the MSP430FR2355 uses a 2-way
//! set-associative cache of four 8-byte lines (two sets). A hit serves the
//! access at CPU speed; a miss fills the line and pays the wait-state
//! penalty of the current [`Frequency`](crate::freq::Frequency).
//!
//! The cache is deliberately tiny — this is the hardware limitation the
//! paper's unified-memory experiments (Figure 1) run into: alternating code
//! and data accesses to distant FRAM addresses thrash the four lines.

/// Sentinel tag for an empty way. Real line numbers are `addr >> shift`
/// for a 16-bit address, so this value can never collide.
const NO_LINE: u32 = u32::MAX;

/// A set-associative read cache with true-LRU replacement within each set.
#[derive(Debug, Clone)]
pub struct HwCache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]` — cached line number, or [`NO_LINE`].
    tags: Vec<u32>,
    /// LRU ordering per set: lower value = more recently used.
    stamps: Vec<u64>,
    tick: u64,
    /// Per-set most-recently-used way. For 2-way sets this single bit is
    /// exact LRU (the victim is always the other way), letting the hot
    /// path skip the stamp scan entirely.
    mru: Vec<u8>,
    enabled: bool,
}

impl HwCache {
    /// Creates a cache with `sets` sets of `ways` ways and `line_bytes`-byte
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if any
    /// parameter is zero.
    pub fn new(sets: usize, ways: usize, line_bytes: usize) -> HwCache {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        HwCache {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![NO_LINE; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            // All stamps start equal, so the first victim is way 0; the MRU
            // bit must start at 1 to agree.
            mru: vec![1; sets],
            enabled: true,
        }
    }

    /// The MSP430FR2355 configuration: 2 sets × 2 ways × 8-byte lines.
    pub fn fr2355() -> HwCache {
        HwCache::new(2, 2, 8)
    }

    /// A pass-through cache that misses on every access (for ablation).
    pub fn disabled() -> HwCache {
        let mut c = HwCache::fr2355();
        c.enabled = false;
        c
    }

    /// Whether the cache is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The cache line number holding `addr`.
    #[inline]
    pub fn line_of(&self, addr: u16) -> u32 {
        u32::from(addr) >> self.line_shift
    }

    /// Performs a read access. Returns `true` on a hit; on a miss the line
    /// is filled (evicting the LRU way of its set).
    #[inline]
    pub fn access_read(&mut self, addr: u16) -> bool {
        let line = self.line_of(addr);
        self.access_line(line)
    }

    /// [`access_read`](HwCache::access_read) for a pre-computed line number,
    /// for callers that already have it in hand.
    #[inline]
    pub fn access_line(&mut self, line: u32) -> bool {
        if !self.enabled {
            return false;
        }
        let set = (line as usize) & (self.sets - 1);
        if self.ways == 2 {
            // 2-way sets: the MRU bit is exact LRU. Invalidation clears a
            // tag but leaves recency alone, exactly like the stamp scheme
            // (the victim choice only depends on which way was touched
            // last, and an invalidated way keeps its recency rank).
            let base = set * 2;
            let t = &mut self.tags[base..base + 2];
            if t[0] == line {
                self.mru[set] = 0;
                return true;
            }
            if t[1] == line {
                self.mru[set] = 1;
                return true;
            }
            let victim = 1 - usize::from(self.mru[set]);
            t[victim] = line;
            self.mru[set] = victim as u8;
            return false;
        }
        self.tick += 1;
        let base = set * self.ways;
        let tags = &mut self.tags[base..base + self.ways];
        let stamps = &mut self.stamps[base..base + self.ways];
        // One pass: scan for a hit while tracking the LRU victim (first
        // minimum, matching `min_by_key` over the full set — stamps ahead
        // of a hit are never needed).
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for way in 0..tags.len() {
            if tags[way] == line {
                stamps[way] = self.tick;
                return true;
            }
            if stamps[way] < victim_stamp {
                victim_stamp = stamps[way];
                victim = way;
            }
        }
        tags[victim] = line;
        stamps[victim] = self.tick;
        false
    }

    /// Invalidates the line containing `addr` (FRAM writes bypass the read
    /// cache; stale lines must not serve subsequent reads).
    pub fn invalidate(&mut self, addr: u16) {
        let line = self.line_of(addr);
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        for way in 0..self.ways {
            if self.tags[base + way] == line {
                self.tags[base + way] = NO_LINE;
            }
        }
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.tags.fill(NO_LINE);
        self.stamps.fill(0);
        self.mru.fill(1);
    }
}

impl Default for HwCache {
    fn default() -> Self {
        HwCache::fr2355()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_words_in_a_line_hit() {
        let mut c = HwCache::fr2355();
        assert!(!c.access_read(0x4000)); // miss, fills line
        assert!(c.access_read(0x4002));
        assert!(c.access_read(0x4004));
        assert!(c.access_read(0x4006));
        assert!(!c.access_read(0x4008)); // next line
    }

    #[test]
    fn two_way_associativity() {
        let mut c = HwCache::fr2355();
        // Lines 0 and 2 map to set 0 (2 sets); both fit in the two ways.
        assert!(!c.access_read(0x4000)); // line A
        assert!(!c.access_read(0x4010)); // line B, same set
        assert!(c.access_read(0x4000));
        assert!(c.access_read(0x4010));
        // A third line in the same set evicts the LRU (line A).
        assert!(!c.access_read(0x4020));
        assert!(!c.access_read(0x4000));
    }

    #[test]
    fn lru_respects_recency() {
        let mut c = HwCache::fr2355();
        c.access_read(0x4000); // A
        c.access_read(0x4010); // B
        c.access_read(0x4000); // touch A; B is now LRU
        c.access_read(0x4020); // evicts B
        assert!(c.access_read(0x4000), "A should have survived");
        assert!(!c.access_read(0x4010), "B should have been evicted");
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut c = HwCache::fr2355();
        c.access_read(0x4000);
        assert!(c.access_read(0x4002));
        c.invalidate(0x4004); // same line
        assert!(!c.access_read(0x4000));
    }

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = HwCache::disabled();
        assert!(!c.access_read(0x4000));
        assert!(!c.access_read(0x4000));
    }
}
