//! Small deterministic PRNG for tests and input generation.
//!
//! The workspace builds offline with no external crates, so the
//! randomized tests that previously used `proptest` draw their cases
//! from this SplitMix64 generator instead. It is seeded explicitly,
//! making every "random" test reproducible by construction.

/// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
/// generators"): tiny state, full 64-bit period, good avalanche — more
/// than enough to drive randomized semantic tests.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 16-bit value.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Next 8-bit value.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Next boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 != 0
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bound (Lemire); bias is negligible for test use.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Random byte vector of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u8()).collect()
    }

    /// Picks one element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(1);
        for n in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..64 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = SplitMix64::new(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }
}
