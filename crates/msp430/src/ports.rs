//! Memory-mapped simulator ports.
//!
//! The evaluation platform in the paper prints benchmark check-sequences
//! over an on-chip UART and toggles a digital pin to trigger oscilloscope
//! measurements (§5.1, §5.4). The simulator provides equivalents as
//! memory-mapped ports in the `0x0100..0x0200` MMIO window:
//!
//! | Address | Name       | Behaviour on write                          |
//! |---------|------------|---------------------------------------------|
//! | 0x0100  | `CONSOLE`  | Low byte appended to the console buffer      |
//! | 0x0102  | `HALT`     | Stops execution; value is the exit code      |
//! | 0x0104  | `CHECKSUM` | Word mixed into a running output checksum    |
//! | 0x0106  | `MARK`     | Records a phase marker (the "pin toggle")    |
//!
//! Reads from any port return the last value written (0 initially).

/// Console output port address.
pub const CONSOLE: u16 = 0x0100;
/// Halt port address.
pub const HALT: u16 = 0x0102;
/// Checksum accumulation port address.
pub const CHECKSUM: u16 = 0x0104;
/// Phase-marker port address.
pub const MARK: u16 = 0x0106;

/// State of the simulator I/O ports.
#[derive(Debug, Clone, Default)]
pub struct Ports {
    console: Vec<u8>,
    halted: Option<u16>,
    checksum: u32,
    checksum_words: u64,
    checksum_log: Vec<u16>,
    marks: Vec<u64>,
    last: [u16; 4],
}

impl Ports {
    /// Creates fresh port state.
    pub fn new() -> Ports {
        Ports::default()
    }

    /// Handles a write of `value` to MMIO address `addr` at `cycle`.
    pub fn write(&mut self, addr: u16, value: u16, cycle: u64) {
        match addr & !1 {
            CONSOLE => {
                self.console.push((value & 0xff) as u8);
                self.last[0] = value;
            }
            HALT => {
                self.halted = Some(value);
                self.last[1] = value;
            }
            CHECKSUM => {
                // Order-sensitive 32-bit mix (FNV-style) so output sequences
                // that differ in any word or ordering differ in checksum.
                self.checksum ^= u32::from(value);
                self.checksum = self.checksum.wrapping_mul(16777619);
                self.checksum_words += 1;
                self.checksum_log.push(value);
                self.last[2] = value;
            }
            MARK => {
                self.marks.push(cycle);
                self.last[3] = value;
            }
            _ => {}
        }
    }

    /// Handles a read from MMIO address `addr`.
    pub fn read(&self, addr: u16) -> u16 {
        match addr & !1 {
            CONSOLE => self.last[0],
            HALT => self.last[1],
            CHECKSUM => self.last[2],
            MARK => self.last[3],
            _ => 0,
        }
    }

    /// The console output so far.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// The exit code if the program wrote to the halt port.
    pub fn halt_code(&self) -> Option<u16> {
        self.halted
    }

    /// The running output checksum and the number of words mixed into it.
    pub fn checksum(&self) -> (u32, u64) {
        (self.checksum, self.checksum_words)
    }

    /// Every word written to the checksum port, in order (useful for
    /// diffing program output against an oracle).
    pub fn checksum_log(&self) -> &[u16] {
        &self.checksum_log
    }

    /// Cycle numbers at which the program wrote the phase marker.
    pub fn marks(&self) -> &[u64] {
        &self.marks
    }
}

/// Computes the checksum a program would produce by writing `words` to the
/// [`CHECKSUM`] port in order. Used by benchmark oracles.
pub fn checksum_of_words<I: IntoIterator<Item = u16>>(words: I) -> u32 {
    let mut c: u32 = 0;
    for w in words {
        c ^= u32::from(w);
        c = c.wrapping_mul(16777619);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn console_collects_bytes() {
        let mut p = Ports::new();
        for b in b"ok" {
            p.write(CONSOLE, u16::from(*b), 0);
        }
        assert_eq!(p.console(), b"ok");
    }

    #[test]
    fn halt_records_code() {
        let mut p = Ports::new();
        assert_eq!(p.halt_code(), None);
        p.write(HALT, 3, 10);
        assert_eq!(p.halt_code(), Some(3));
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a = checksum_of_words([1, 2, 3]);
        let b = checksum_of_words([3, 2, 1]);
        assert_ne!(a, b);
        let mut p = Ports::new();
        for w in [1u16, 2, 3] {
            p.write(CHECKSUM, w, 0);
        }
        assert_eq!(p.checksum(), (a, 3));
    }

    #[test]
    fn marks_record_cycles() {
        let mut p = Ports::new();
        p.write(MARK, 1, 100);
        p.write(MARK, 1, 250);
        assert_eq!(p.marks(), &[100, 250]);
    }
}
