//! Execution statistics: memory-access counts, cycle counters and dynamic
//! instruction attribution.
//!
//! This module plays the role of the paper's modified `mspdebug` simulator
//! (§4): every memory access is categorised by region (FRAM/SRAM) and kind
//! (instruction fetch, data read, data write), and every executed
//! instruction is attributed to a [`Category`] so the dynamic-instruction
//! breakdown of Figure 8 (application code from FRAM, application code from
//! SRAM, miss handler, `memcpy`) can be regenerated.

use std::fmt;

/// Attribution class for executed instructions (the series of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Application code fetched from FRAM.
    AppFram,
    /// Application code fetched from SRAM (i.e. executing out of the
    /// software cache).
    AppSram,
    /// Cache-management runtime (SwapRAM or block-cache miss handler).
    MissHandler,
    /// The function/block copy loop moving code into SRAM.
    Memcpy,
}

impl Category {
    /// All categories, in Figure-8 order.
    pub const ALL: [Category; 4] =
        [Category::AppFram, Category::AppSram, Category::MissHandler, Category::Memcpy];

    /// Index into per-category arrays.
    pub fn index(self) -> usize {
        match self {
            Category::AppFram => 0,
            Category::AppSram => 1,
            Category::MissHandler => 2,
            Category::Memcpy => 3,
        }
    }

    /// Display label matching the paper's figure legend.
    pub fn label(self) -> &'static str {
        match self {
            Category::AppFram => "app (FRAM)",
            Category::AppSram => "app (SRAM)",
            Category::MissHandler => "miss handler",
            Category::Memcpy => "memcpy",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-region, per-kind access counters plus cycle and instruction counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Instruction fetches served by FRAM.
    pub fram_ifetch: u64,
    /// Data reads served by FRAM.
    pub fram_read: u64,
    /// Data writes to FRAM.
    pub fram_write: u64,
    /// Instruction fetches served by SRAM.
    pub sram_ifetch: u64,
    /// Data reads served by SRAM.
    pub sram_read: u64,
    /// Data writes to SRAM.
    pub sram_write: u64,
    /// Accesses to memory-mapped I/O.
    pub mmio_accesses: u64,
    /// Instruction-table cycles (no stalls) — the paper's "unstalled
    /// cycles" of Table 2, including modeled runtime effort.
    pub unstalled_cycles: u64,
    /// Stall cycles from FRAM wait states on hardware-cache misses.
    pub wait_cycles: u64,
    /// Stall cycles from same-instruction FRAM line contention (§2.2).
    pub contention_cycles: u64,
    /// Hardware read-cache hits.
    pub hw_cache_hits: u64,
    /// Hardware read-cache misses.
    pub hw_cache_misses: u64,
    /// Timer interrupts delivered to the CPU.
    pub irq_delivered: u64,
    /// Timer fires coalesced into an already-pending request (no separate
    /// delivery of their own).
    pub irq_coalesced: u64,
    /// Cycles spent in the hardware interrupt entry sequence (6 per
    /// delivery on the MSP430), already included in `unstalled_cycles`.
    pub irq_latency_cycles: u64,
    /// Executed instructions per attribution category.
    pub instructions: [u64; 4],
}

impl Stats {
    /// Creates zeroed statistics.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Total FRAM accesses of any kind — the metric of Table 2's top half.
    pub fn fram_accesses(&self) -> u64 {
        self.fram_ifetch + self.fram_read + self.fram_write
    }

    /// Total SRAM accesses of any kind.
    pub fn sram_accesses(&self) -> u64 {
        self.sram_ifetch + self.sram_read + self.sram_write
    }

    /// Total accesses to code space (instruction fetches from both
    /// memories) — numerator of Table 1's code/data access ratio.
    pub fn code_accesses(&self) -> u64 {
        self.fram_ifetch + self.sram_ifetch
    }

    /// Total accesses to data space (reads and writes from both memories) —
    /// denominator of Table 1's code/data access ratio.
    pub fn data_accesses(&self) -> u64 {
        self.fram_read + self.fram_write + self.sram_read + self.sram_write
    }

    /// Code-to-data access ratio (Table 1). `None` when no data accesses
    /// occurred.
    pub fn code_data_ratio(&self) -> Option<f64> {
        let d = self.data_accesses();
        if d == 0 {
            None
        } else {
            Some(self.code_accesses() as f64 / d as f64)
        }
    }

    /// Total cycles to completion including all stalls — what a wall-clock
    /// runtime measurement on the physical board observes.
    pub fn total_cycles(&self) -> u64 {
        self.unstalled_cycles + self.wait_cycles + self.contention_cycles
    }

    /// Total executed instructions across all categories.
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }

    /// Executed instructions in `cat`.
    pub fn instructions_in(&self, cat: Category) -> u64 {
        self.instructions[cat.index()]
    }

    /// Records a dynamically executed instruction in `cat`.
    pub fn count_instruction(&mut self, cat: Category) {
        self.instructions[cat.index()] += 1;
    }

    /// Charges modeled runtime work: `instrs` executed instructions and
    /// `cycles` unstalled cycles attributed to `cat`.
    ///
    /// Used by the hybrid runtime model (see DESIGN.md §5): the miss
    /// handler's memory traffic goes through the bus like any other access,
    /// while its instruction-execution effort is charged here.
    pub fn charge_modeled(&mut self, cat: Category, instrs: u64, cycles: u64) {
        self.instructions[cat.index()] += instrs;
        self.unstalled_cycles += cycles;
    }

    /// Hardware-cache hit rate over FRAM reads, or `None` if there were no
    /// cacheable accesses.
    pub fn hw_cache_hit_rate(&self) -> Option<f64> {
        let total = self.hw_cache_hits + self.hw_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.hw_cache_hits as f64 / total as f64)
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FRAM: {} ifetch / {} read / {} write; SRAM: {} ifetch / {} read / {} write",
            self.fram_ifetch,
            self.fram_read,
            self.fram_write,
            self.sram_ifetch,
            self.sram_read,
            self.sram_write
        )?;
        write!(
            f,
            "cycles: {} unstalled + {} wait + {} contention = {}",
            self.unstalled_cycles,
            self.wait_cycles,
            self.contention_cycles,
            self.total_cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = Stats::new();
        s.fram_ifetch = 30;
        s.sram_ifetch = 30;
        s.fram_read = 10;
        s.sram_write = 10;
        assert_eq!(s.code_accesses(), 60);
        assert_eq!(s.data_accesses(), 20);
        assert!((s.code_data_ratio().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_none() {
        assert_eq!(Stats::new().code_data_ratio(), None);
        assert_eq!(Stats::new().hw_cache_hit_rate(), None);
    }

    #[test]
    fn charge_modeled_attributes() {
        let mut s = Stats::new();
        s.charge_modeled(Category::MissHandler, 10, 35);
        s.charge_modeled(Category::Memcpy, 4, 20);
        assert_eq!(s.instructions_in(Category::MissHandler), 10);
        assert_eq!(s.instructions_in(Category::Memcpy), 4);
        assert_eq!(s.unstalled_cycles, 55);
        assert_eq!(s.total_instructions(), 14);
    }

    #[test]
    fn total_cycles_sums_all_stall_sources() {
        let mut s = Stats::new();
        s.unstalled_cycles = 100;
        s.wait_cycles = 30;
        s.contention_cycles = 5;
        assert_eq!(s.total_cycles(), 135);
    }
}
