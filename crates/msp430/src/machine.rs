//! Top-level simulated machine: CPU + bus + optional runtime hook.
//!
//! A [`Hook`] models a software runtime (the SwapRAM miss handler or the
//! block-cache runtime) that is entered whenever control flow reaches the
//! trap window of the memory map — the mechanism behind the indirect
//! `CALL &redir` / `BR &exit` instructions the instrumentation passes plant
//! in application code. The hook manipulates machine state through the same
//! bus as the program, so all of its memory traffic is counted.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::blockcache::BlockEngine;
use crate::cpu::{Cpu, FLAG_GIE};
use crate::error::{SimError, SimResult};
use crate::fault::{FaultKind, FaultPlan};
use crate::freq::Frequency;
use crate::hwcache::HwCache;
use crate::isa::Reg;
use crate::mem::{Bus, Image, MemoryMap};
use crate::profile::Profiler;
use crate::sanitize::Violation;
use crate::trace::Stats;

/// Cycles the hardware interrupt entry sequence takes on the MSP430
/// (push PC, push SR, clear SR, fetch the vector): 6 cycles from request
/// acceptance to the first ISR instruction.
pub const IRQ_LATENCY_CYCLES: u32 = 6;

/// Environment variable selecting the default execution engine:
/// `interp` for the classic fetch/decode interpreter, anything else (or
/// unset) for the pre-decoded block engine.
pub const ENGINE_ENV: &str = "SWAPRAM_ENGINE";

/// Which execution engine a [`Machine`] dispatches instructions with.
/// Both engines are byte-identical in observable behaviour (statistics,
/// checksums, exit reasons, faults) — see the differential test tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Fetch/decode/execute every instruction from memory.
    Interp,
    /// Pre-decoded basic-block dispatch (see [`crate::blockcache`]).
    Predecoded,
}

/// Process-wide override installed by [`set_default_engine`]:
/// 0 = none, 1 = interp, 2 = predecoded.
static ENGINE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides the default engine for machines created after this call
/// (`None` restores the `SWAPRAM_ENGINE` / built-in default). Intended
/// for differential tests that construct machines deep inside shared
/// helpers; per-machine [`Machine::set_engine`] wins when reachable.
pub fn set_default_engine(engine: Option<Engine>) {
    let v = match engine {
        None => 0,
        Some(Engine::Interp) => 1,
        Some(Engine::Predecoded) => 2,
    };
    ENGINE_OVERRIDE.store(v, Ordering::SeqCst);
}

/// The engine new machines start with: the [`set_default_engine`]
/// override if installed, else `SWAPRAM_ENGINE`, else pre-decoded.
pub fn default_engine() -> Engine {
    match ENGINE_OVERRIDE.load(Ordering::SeqCst) {
        1 => return Engine::Interp,
        2 => return Engine::Predecoded,
        _ => {}
    }
    static FROM_ENV: OnceLock<Engine> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var(ENGINE_ENV).ok().as_deref() {
        Some("interp") => Engine::Interp,
        _ => Engine::Predecoded,
    })
}

/// What a [`Hook`] asks the machine to do after servicing a trap.
///
/// The hook is responsible for setting the CPU's program counter to the
/// continuation address before returning [`TrapAction::Resume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapAction {
    /// Continue executing at the PC the hook installed.
    Resume,
    /// Stop the machine with an exit code.
    Halt(u16),
}

/// Which side of an interrupt the machine is crossing when it calls
/// [`Hook::on_interrupt_boundary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqBoundary {
    /// A timer interrupt is about to be delivered (the hardware entry
    /// sequence has not run yet; CPU state is the interrupted program's).
    Entry,
    /// A `reti` just completed (CPU state is the resumed program's).
    Return,
}

/// A software runtime attached to the machine (see module docs).
pub trait Hook {
    /// Services a trap: control flow reached `trap_pc` inside the trap
    /// window.
    ///
    /// # Errors
    ///
    /// Returns an error to abort simulation (e.g. corrupted runtime state).
    fn on_trap(&mut self, cpu: &mut Cpu, bus: &mut Bus, trap_pc: u16) -> SimResult<TrapAction>;

    /// Called at every interrupt boundary when a timer is armed: just
    /// before delivery and just after each `reti`. Runtimes use this to
    /// audit their invariants at exactly the points asynchronous control
    /// flow could observe them mid-update. The default does nothing.
    ///
    /// # Errors
    ///
    /// Returns an error to abort simulation (e.g. an invariant violated
    /// at the boundary).
    fn on_interrupt_boundary(
        &mut self,
        _cpu: &mut Cpu,
        _bus: &mut Bus,
        _boundary: IrqBoundary,
    ) -> SimResult<()> {
        Ok(())
    }

    /// Called when a scheduled power-loss fault fires, after the last
    /// instruction retired and before the machine reports
    /// [`ExitReason::PowerLoss`]: the supply just crossed the brown-out
    /// threshold, and the decoupling capacitor's tail charge powers a
    /// final bounded burst of work. Just-in-time checkpointing runtimes
    /// (the Hibernus / QuickRecall model) use this dying gasp to commit a
    /// resume frame at the exact interruption point, so the next boot
    /// continues without re-executing anything — the property that makes
    /// checkpointing sound for programs that mutate non-volatile data in
    /// place. The default does nothing.
    ///
    /// # Errors
    ///
    /// Returns an error to abort simulation (e.g. corrupted runtime
    /// state discovered while checkpointing).
    fn on_power_failing(&mut self, _cpu: &mut Cpu, _bus: &mut Bus) -> SimResult<()> {
        Ok(())
    }

    /// Downcast support for callers that retrieve the hook after a run
    /// (e.g. to audit runtime metadata against final machine state).
    /// Implementations that want to be downcast return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Why a [`Machine::run`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The program wrote to the halt port (or a hook halted); carries the
    /// exit code.
    Halted(u16),
    /// The cycle budget was exhausted.
    CycleLimit,
    /// A scheduled [`FaultKind::PowerLoss`] fired. Call
    /// [`Machine::power_cycle`] and [`Machine::run`] again to model the
    /// reboot.
    PowerLoss,
    /// The execution sanitizer flagged a watchpoint violation (see
    /// [`crate::sanitize`]) — misexecution was stopped instead of running
    /// silently.
    SanitizerTrap(Violation),
}

/// Everything a finished run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Why execution stopped.
    pub exit: ExitReason,
    /// Full execution statistics.
    pub stats: Stats,
    /// Bytes the program wrote to the console port.
    pub console: Vec<u8>,
    /// Output checksum and number of words mixed into it.
    pub checksum: (u32, u64),
    /// Cycle numbers of phase-marker writes.
    pub marks: Vec<u64>,
}

impl RunOutcome {
    /// True if the program halted with exit code 0.
    pub fn success(&self) -> bool {
        matches!(self.exit, ExitReason::Halted(0))
    }
}

/// A complete simulated device.
pub struct Machine {
    cpu: Cpu,
    bus: Bus,
    hook: Option<Box<dyn Hook>>,
    profiler: Option<Profiler>,
    faults: Option<FaultPlan>,
    /// Entry point of the last loaded image — the reset vector a
    /// [`Machine::power_cycle`] reboots to.
    entry: u16,
    /// Pre-decoded dispatch engine; `None` = interpreter.
    engine: Option<Box<BlockEngine>>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.cpu.pc())
            .field("has_hook", &self.hook.is_some())
            .finish()
    }
}

impl Machine {
    /// Creates a machine over `bus` with no runtime hook, using the
    /// [`default_engine`].
    pub fn new(bus: Bus) -> Machine {
        let mut m = Machine {
            cpu: Cpu::new(),
            bus,
            hook: None,
            profiler: None,
            faults: None,
            entry: 0,
            engine: None,
        };
        m.set_engine(default_engine());
        m
    }

    /// Switches the execution engine, dropping any cached decode state.
    pub fn set_engine(&mut self, engine: Engine) {
        match engine {
            Engine::Interp => {
                self.engine = None;
                self.bus.disable_code_watch();
            }
            Engine::Predecoded => {
                self.bus.enable_code_watch();
                let mut e = Box::new(BlockEngine::new());
                e.reset(&mut self.bus);
                self.engine = Some(e);
            }
        }
    }

    /// The active execution engine.
    pub fn engine(&self) -> Engine {
        if self.engine.is_some() { Engine::Predecoded } else { Engine::Interp }
    }

    /// Diagnostics of the pre-decoded engine, if active:
    /// `(blocks_built, blocks_invalidated, delegated_steps)`.
    pub fn engine_diagnostics(&self) -> Option<(u64, u64, u64)> {
        let e = self.engine.as_ref()?;
        Some((e.blocks_built(), e.blocks_invalidated(), e.delegated()))
    }

    /// Attaches a per-function execution profiler (see
    /// [`crate::profile`]).
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// The CPU.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable CPU access (e.g. to preset registers in tests).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// The bus.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable bus access (e.g. to inject benchmark inputs).
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// Simultaneous mutable CPU and bus access, for host-side runtimes
    /// whose boot-time recovery both rewrites memory and restores the
    /// register file (e.g. persistent-stack resume).
    pub fn cpu_bus_mut(&mut self) -> (&mut Cpu, &mut Bus) {
        (&mut self.cpu, &mut self.bus)
    }

    /// Attaches a runtime hook, replacing any previous one.
    pub fn attach_hook(&mut self, hook: Box<dyn Hook>) {
        self.hook = Some(hook);
    }

    /// Detaches and returns the runtime hook, if any.
    pub fn take_hook(&mut self) -> Option<Box<dyn Hook>> {
        self.hook.take()
    }

    /// Loads a program image and points the PC at its entry, remembering
    /// the entry as the reset vector for [`Machine::power_cycle`].
    ///
    /// # Panics
    ///
    /// Panics if a segment overflows the address space — a malformed
    /// image is a host-side construction bug, not a runtime condition
    /// (use [`Bus::load_image`] directly for a fallible load).
    pub fn load(&mut self, image: &Image) {
        self.bus.load_image(image).expect("malformed image");
        self.entry = image.entry;
        self.cpu.set_pc(image.entry);
    }

    /// Attaches a fault-injection schedule, replacing any previous one.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Models a reboot after power loss: the register file resets and the
    /// PC returns to the loaded image's entry; the bus loses all volatile
    /// state while FRAM persists (see [`Bus::power_cycle`]). Any attached
    /// hook is dropped — software runtimes hold volatile state and must
    /// be rebuilt and re-attached by the caller, exactly as a real
    /// runtime reconstructs itself from persistent metadata at boot. The
    /// fault plan and statistics survive (cumulative cycle schedules).
    pub fn power_cycle(&mut self) {
        self.cpu = Cpu::new();
        self.cpu.set_pc(self.entry);
        self.bus.power_cycle();
        // Cached decoded blocks are volatile state derived from SRAM
        // contents and sanitizer fill tracking — both just reset.
        if let Some(e) = &mut self.engine {
            e.reset(&mut self.bus);
        }
        self.hook = None;
    }

    /// Executes one instruction or services one trap.
    ///
    /// Returns `Some(code)` if the machine halted.
    ///
    /// # Errors
    ///
    /// Propagates CPU/bus errors; reaching the trap window with no hook
    /// attached is a [`SimError::Hook`] error.
    pub fn step(&mut self) -> SimResult<Option<u16>> {
        let pc = self.cpu.pc();
        if self.bus.map().trap.contains(pc) {
            let mut hook = self
                .hook
                .take()
                .ok_or_else(|| SimError::Hook(format!("trap at 0x{pc:04x} with no hook")))?;
            // The runtime is trusted: suppress sanitizer watchpoints while
            // it fills cache slots and rewrites its metadata.
            self.bus.set_runtime_mode(true);
            let action = hook.on_trap(&mut self.cpu, &mut self.bus, pc);
            self.bus.set_runtime_mode(false);
            self.hook = Some(hook);
            match action? {
                TrapAction::Resume => {}
                TrapAction::Halt(code) => return Ok(Some(code)),
            }
        } else {
            if let Some(p) = &mut self.profiler {
                p.record(pc, self.bus.map().region_of(pc));
            }
            match &mut self.engine {
                Some(e) => e.step(&mut self.cpu, &mut self.bus)?,
                None => {
                    self.cpu.step(&mut self.bus)?;
                }
            }
        }
        Ok(self.bus.ports().halt_code())
    }

    /// Runs until the program halts or `max_cycles` total cycles elapse.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from [`Machine::step`].
    pub fn run(&mut self, max_cycles: u64) -> SimResult<RunOutcome> {
        // Fault plans fire at exact instruction boundaries, profilers
        // record every PC, and timer interrupts are accepted between
        // instructions — so the pre-decoded engine may only batch
        // straight-line runs when none is attached; the engine then
        // replicates this loop's per-instruction checks inline (see
        // [`BlockEngine::step_batched`]).
        let irq = self.bus.timer().is_some();
        let batch = self.faults.is_none() && self.profiler.is_none() && !irq;
        let exit = loop {
            let stepped = if batch { self.step_batch(max_cycles) } else { self.step() };
            // A latched sanitizer violation wins over whatever the wild
            // instruction did — including the bus fault it may have died
            // on — so misexecution surfaces as one typed exit.
            self.bus.check_stack(self.cpu.sp());
            if let Some(v) = self.bus.take_violation() {
                break ExitReason::SanitizerTrap(v);
            }
            if let Some(code) = stepped? {
                break ExitReason::Halted(code);
            }
            if let Some(reason) = self.fire_due_faults()? {
                break reason;
            }
            // Drain the reti flag even with no timer armed, so a timer
            // attached later never observes a stale boundary.
            if self.bus.take_reti() && irq {
                self.interrupt_boundary(IrqBoundary::Return)?;
            }
            if irq {
                self.service_interrupt()?;
            }
            if self.bus.stats().total_cycles() >= max_cycles {
                break ExitReason::CycleLimit;
            }
        };
        Ok(self.outcome(exit))
    }

    /// Notifies the hook of an interrupt boundary (no-op without a hook).
    /// Runs in trusted-runtime mode like a trap service, so the hook's
    /// own bookkeeping reads never trip the sanitizer.
    fn interrupt_boundary(&mut self, boundary: IrqBoundary) -> SimResult<()> {
        let Some(mut hook) = self.hook.take() else { return Ok(()) };
        self.bus.set_runtime_mode(true);
        let result = hook.on_interrupt_boundary(&mut self.cpu, &mut self.bus, boundary);
        self.bus.set_runtime_mode(false);
        self.hook = Some(hook);
        result
    }

    /// Polls the timer and, if an interrupt is pending and deliverable,
    /// performs the MSP430 hardware entry sequence: push PC, push SR,
    /// clear SR (masking further interrupts — no nesting), load the
    /// vector, charge [`IRQ_LATENCY_CYCLES`].
    ///
    /// Delivery is gated on the `GIE` bit and deferred while the PC sits
    /// in the trap window — a pending runtime trap services first, so the
    /// hook's view of the trapping call's stack frame stays intact.
    ///
    /// # Errors
    ///
    /// An unset or misaligned vector is a [`SimError::Hook`] error; the
    /// stack pushes go through the bus and may fault like any guest
    /// store. Boundary-hook errors propagate.
    fn service_interrupt(&mut self) -> SimResult<()> {
        self.bus.poll_timer();
        if !self.bus.irq_pending()
            || self.cpu.sr() & FLAG_GIE == 0
            || self.bus.map().trap.contains(self.cpu.pc())
        {
            return Ok(());
        }
        let vector = self.bus.timer().map_or(0, |t| t.vector());
        if vector == 0 || vector == 0xFFFF || vector & 1 != 0 {
            return Err(SimError::Hook(format!("invalid interrupt vector 0x{vector:04x}")));
        }
        self.interrupt_boundary(IrqBoundary::Entry)?;
        let pc = self.cpu.pc();
        let sr = self.cpu.sr();
        let sp = self.cpu.sp().wrapping_sub(2);
        self.cpu.set_sp(sp);
        self.bus.write_word(sp, pc)?;
        let sp = sp.wrapping_sub(2);
        self.cpu.set_sp(sp);
        self.bus.write_word(sp, sr)?;
        self.cpu.set_reg(Reg::SR, 0);
        self.cpu.set_pc(vector);
        self.bus.clear_irq_pending();
        let stats = self.bus.stats_mut();
        stats.irq_delivered += 1;
        stats.irq_latency_cycles += u64::from(IRQ_LATENCY_CYCLES);
        stats.unstalled_cycles += u64::from(IRQ_LATENCY_CYCLES);
        Ok(())
    }

    /// Like [`Machine::step`], but lets the pre-decoded engine execute a
    /// whole straight-line run before returning to the polling loop.
    /// Only called from [`Machine::run`] when no fault plan or profiler
    /// is attached (so per-instruction polling is unobservable).
    fn step_batch(&mut self, max_cycles: u64) -> SimResult<Option<u16>> {
        if self.bus.map().trap.contains(self.cpu.pc()) {
            return self.step();
        }
        match &mut self.engine {
            Some(e) => e.step_batched(&mut self.cpu, &mut self.bus, max_cycles)?,
            None => {
                self.cpu.step(&mut self.bus)?;
            }
        }
        Ok(self.bus.ports().halt_code())
    }

    /// Fires every scheduled fault whose cycle has been reached. Bit flips
    /// apply silently; a power loss notifies the hook (the brown-out
    /// dying gasp, see [`Hook::on_power_failing`]), stops the firing
    /// sweep (later events stay pending for subsequent boots) and returns
    /// the exit reason.
    fn fire_due_faults(&mut self) -> SimResult<Option<ExitReason>> {
        let now = self.bus.stats().total_cycles();
        loop {
            let Some(ev) = self.faults.as_mut().and_then(|f| f.take_due(now)) else {
                return Ok(None);
            };
            match ev.kind {
                FaultKind::PowerLoss => {
                    self.power_failing()?;
                    return Ok(Some(ExitReason::PowerLoss));
                }
                FaultKind::BitFlip { addr, bit } => self.bus.flip_bit(addr, bit),
            }
        }
    }

    /// Notifies the hook that the supply just browned out (no-op without
    /// a hook). Runs in trusted-runtime mode like a trap service, so the
    /// hook's checkpoint writes never trip the sanitizer.
    fn power_failing(&mut self) -> SimResult<()> {
        let Some(mut hook) = self.hook.take() else { return Ok(()) };
        self.bus.set_runtime_mode(true);
        let result = hook.on_power_failing(&mut self.cpu, &mut self.bus);
        self.bus.set_runtime_mode(false);
        self.hook = Some(hook);
        result
    }

    /// Snapshots the current run outcome with the given exit reason.
    pub fn outcome(&self, exit: ExitReason) -> RunOutcome {
        RunOutcome {
            exit,
            stats: self.bus.stats().clone(),
            console: self.bus.ports().console().to_vec(),
            checksum: self.bus.ports().checksum(),
            marks: self.bus.ports().marks().to_vec(),
        }
    }
}

/// Builder for the MSP430FR2355 device profile used throughout the paper's
/// evaluation: 4 KiB SRAM, 32 KiB FRAM, 2-way × 2-set × 8-byte hardware
/// read cache.
#[derive(Debug, Clone, Copy)]
pub struct Fr2355;

impl Fr2355 {
    /// Creates a machine with the FR2355 memory map and hardware cache at
    /// the given operating point.
    pub fn machine(freq: Frequency) -> Machine {
        Machine::new(Bus::new(MemoryMap::fr2355(), HwCache::fr2355(), freq))
    }

    /// Same as [`Fr2355::machine`] but with the hardware read cache
    /// disabled (for ablation studies).
    pub fn machine_without_hw_cache(freq: Frequency) -> Machine {
        Machine::new(Bus::new(MemoryMap::fr2355(), HwCache::disabled(), freq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Opcode, Operand, Reg, Size};
    use crate::mem::Segment;
    use crate::ports;

    fn image_of(instrs: &[Instr], base: u16) -> Image {
        let mut bytes = Vec::new();
        let mut at = base;
        for i in instrs {
            for w in i.encode(at).unwrap() {
                bytes.push((w & 0xff) as u8);
                bytes.push((w >> 8) as u8);
                at = at.wrapping_add(2);
            }
        }
        Image { segments: vec![Segment { addr: base, bytes }], entry: base }
    }

    fn halt_with(code: u16) -> Instr {
        Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Imm(code),
            dst: Operand::Absolute(ports::HALT),
        }
    }

    #[test]
    fn run_halts_on_halt_port() {
        let mut m = Fr2355::machine(Frequency::MHZ_8);
        m.load(&image_of(&[halt_with(0)], 0x4000));
        let out = m.run(1_000).unwrap();
        assert!(out.success());
    }

    #[test]
    fn cycle_limit() {
        let mut m = Fr2355::machine(Frequency::MHZ_8);
        // JMP -1 loops forever (jumps to itself).
        m.load(&image_of(&[Instr::Jump { op: Opcode::Jmp, offset_words: -1 }], 0x4000));
        let out = m.run(100).unwrap();
        assert_eq!(out.exit, ExitReason::CycleLimit);
        assert!(out.stats.total_cycles() >= 100);
    }

    #[test]
    fn trap_without_hook_errors() {
        let mut m = Fr2355::machine(Frequency::MHZ_8);
        // BR #0x0F00 jumps straight into the trap window.
        m.load(&image_of(
            &[Instr::FormatI {
                op: Opcode::Mov,
                size: Size::Word,
                src: Operand::Imm(0x0F00),
                dst: Operand::Reg(Reg::PC),
            }],
            0x4000,
        ));
        assert!(matches!(m.run(1_000), Err(SimError::Hook(_))));
    }

    #[test]
    fn hook_is_invoked_and_can_redirect() {
        struct Bouncer {
            hits: u32,
        }
        impl Hook for Bouncer {
            fn on_trap(&mut self, cpu: &mut Cpu, _bus: &mut Bus, pc: u16) -> SimResult<TrapAction> {
                assert_eq!(pc, 0x0F00);
                self.hits += 1;
                cpu.set_pc(0x4100);
                Ok(TrapAction::Resume)
            }
        }
        let mut m = Fr2355::machine(Frequency::MHZ_8);
        m.load(&image_of(
            &[Instr::FormatI {
                op: Opcode::Mov,
                size: Size::Word,
                src: Operand::Imm(0x0F00),
                dst: Operand::Reg(Reg::PC),
            }],
            0x4000,
        ));
        // Landing pad at 0x4100 halts.
        let pad = image_of(&[halt_with(0)], 0x4100);
        m.bus_mut().load_image(&pad).unwrap();
        m.attach_hook(Box::new(Bouncer { hits: 0 }));
        let out = m.run(1_000).unwrap();
        assert!(out.success());
    }

    #[test]
    fn scheduled_power_loss_interrupts_and_reboot_restarts() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};

        let mut m = Fr2355::machine(Frequency::MHZ_8);
        // Spin forever; only the fault plan can stop this run.
        m.load(&image_of(&[Instr::Jump { op: Opcode::Jmp, offset_words: -1 }], 0x4000));
        m.attach_fault_plan(FaultPlan::new(vec![
            FaultEvent { cycle: 40, kind: FaultKind::PowerLoss },
            FaultEvent { cycle: 90, kind: FaultKind::PowerLoss },
        ]));
        m.cpu_mut().set_reg(crate::isa::Reg::R12, 0x1234);
        m.bus_mut().poke_word(0x2000, 0xBEEF);

        let out = m.run(1_000_000).unwrap();
        assert_eq!(out.exit, ExitReason::PowerLoss);
        assert!(out.stats.total_cycles() >= 40);

        m.power_cycle();
        assert_eq!(m.cpu().pc(), 0x4000, "reboot returns to the entry");
        assert_eq!(m.cpu().reg(crate::isa::Reg::R12), 0, "registers are volatile");
        assert_eq!(m.bus().peek_word(0x2000), 0, "SRAM is volatile");

        // The second boot runs until the second scheduled loss.
        let out2 = m.run(1_000_000).unwrap();
        assert_eq!(out2.exit, ExitReason::PowerLoss);
        assert!(out2.stats.total_cycles() >= 90, "cycles accumulate across boots");
        assert_eq!(m.fault_plan().unwrap().remaining(), 0);

        // With the schedule exhausted the budget takes over again.
        m.power_cycle();
        let out3 = m.run(out2.stats.total_cycles() + 100).unwrap();
        assert_eq!(out3.exit, ExitReason::CycleLimit);
    }

    #[test]
    fn scheduled_bit_flip_corrupts_memory_mid_run() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};

        let mut m = Fr2355::machine(Frequency::MHZ_8);
        m.load(&image_of(&[Instr::Jump { op: Opcode::Jmp, offset_words: -1 }], 0x4000));
        m.bus_mut().poke_word(0x5000, 0x0000);
        m.attach_fault_plan(FaultPlan::new(vec![FaultEvent {
            cycle: 20,
            kind: FaultKind::BitFlip { addr: 0x5000, bit: 1 },
        }]));
        let out = m.run(200).unwrap();
        assert_eq!(out.exit, ExitReason::CycleLimit, "bit flips do not stop the run");
        assert_eq!(m.bus().peek_byte(0x5000), 0x02);
    }

    #[test]
    fn bit_flip_in_cached_line_is_visible_after_invalidation() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};

        // Loop: MOV.B &0x5000, &CONSOLE; JMP back. The data word sits in
        // FRAM behind the hardware read cache; the scheduled flip must
        // invalidate the covering line so the post-flip value — not the
        // stale cached one — reaches the console.
        let read_out = Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Byte,
            src: Operand::Absolute(0x5000),
            dst: Operand::Absolute(ports::CONSOLE),
        };
        let mut m = Fr2355::machine(Frequency::MHZ_24);
        m.load(&image_of(&[read_out, Instr::Jump { op: Opcode::Jmp, offset_words: -4 }], 0x4000));
        m.bus_mut().poke_byte(0x5000, 0x11);
        m.attach_fault_plan(FaultPlan::new(vec![FaultEvent {
            cycle: 300,
            kind: FaultKind::BitFlip { addr: 0x5000, bit: 1 },
        }]));
        let out = m.run(1_000).unwrap();
        assert_eq!(out.exit, ExitReason::CycleLimit);
        assert_eq!(out.console.first(), Some(&0x11), "pre-flip value observed");
        assert_eq!(out.console.last(), Some(&0x13), "post-flip value observed");
        assert!(out.console.contains(&0x13), "flip must be visible through the cache");
    }

    #[test]
    fn sanitizer_flags_wild_jump_as_typed_exit() {
        use crate::sanitize::{SanitizerConfig, Violation};

        let mut m = Fr2355::machine(Frequency::MHZ_8);
        // BR #0x9000: leaves the configured executable range.
        m.load(&image_of(
            &[Instr::FormatI {
                op: Opcode::Mov,
                size: Size::Word,
                src: Operand::Imm(0x9000),
                dst: Operand::Reg(Reg::PC),
            }],
            0x4000,
        ));
        m.bus_mut().attach_sanitizer(SanitizerConfig {
            exec: vec![crate::mem::AddrRange::new(0x4000, 0x8000)],
            ..SanitizerConfig::default()
        });
        let out = m.run(1_000).unwrap();
        assert_eq!(out.exit, ExitReason::SanitizerTrap(Violation::WildJump { pc: 0x9000 }));
    }

    #[test]
    fn sanitizer_flags_fetch_from_unfilled_sram() {
        use crate::sanitize::{SanitizerConfig, Violation};

        let mut m = Fr2355::machine(Frequency::MHZ_8);
        // BR #0x2800: jumps into tracked SRAM nothing ever filled.
        m.load(&image_of(
            &[Instr::FormatI {
                op: Opcode::Mov,
                size: Size::Word,
                src: Operand::Imm(0x2800),
                dst: Operand::Reg(Reg::PC),
            }],
            0x4000,
        ));
        m.bus_mut().attach_sanitizer(SanitizerConfig {
            exec: vec![
                crate::mem::AddrRange::new(0x4000, 0x8000),
                crate::mem::AddrRange::new(0x2800, 0x3000),
            ],
            tracked: Some(crate::mem::AddrRange::new(0x2800, 0x3000)),
            ..SanitizerConfig::default()
        });
        let out = m.run(1_000).unwrap();
        assert_eq!(out.exit, ExitReason::SanitizerTrap(Violation::StaleFetch { pc: 0x2800 }));
    }

    #[test]
    fn sanitizer_flags_application_store_into_protected_region() {
        use crate::sanitize::{SanitizerConfig, Violation};

        let store = Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Imm(0xBEEF),
            dst: Operand::Absolute(0x4100),
        };
        let mut m = Fr2355::machine(Frequency::MHZ_8);
        m.load(&image_of(&[store, halt_with(0)], 0x4000));
        m.bus_mut().attach_sanitizer(SanitizerConfig {
            exec: vec![crate::mem::AddrRange::new(0x4000, 0x8000)],
            protected: vec![crate::mem::AddrRange::new(0x4000, 0x4200)],
            ..SanitizerConfig::default()
        });
        let out = m.run(1_000).unwrap();
        assert_eq!(out.exit, ExitReason::SanitizerTrap(Violation::BadStore { addr: 0x4100 }));
    }

    /// `eint` (`bis #8, sr`) as an encodable instruction.
    fn eint() -> Instr {
        Instr::FormatI {
            op: Opcode::Bis,
            size: Size::Word,
            src: Operand::Imm(0x0008),
            dst: Operand::Reg(Reg::SR),
        }
    }

    fn reti() -> Instr {
        Instr::FormatII { op: Opcode::Reti, size: Size::Word, dst: Operand::Reg(Reg::CG) }
    }

    fn say(b: u8) -> Instr {
        Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Byte,
            src: Operand::Imm(u16::from(b)),
            dst: Operand::Absolute(ports::CONSOLE),
        }
    }

    /// Main at 0x4000: enable interrupts, set up a stack, spin. ISR at
    /// 0x4400: emit one console byte, return.
    fn irq_machine(engine: Engine) -> Machine {
        let mut m = Fr2355::machine(Frequency::MHZ_8);
        m.set_engine(engine);
        let set_sp = Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Imm(0x3000),
            dst: Operand::Reg(Reg::SP),
        };
        m.load(&image_of(
            &[set_sp, eint(), Instr::Jump { op: Opcode::Jmp, offset_words: -1 }],
            0x4000,
        ));
        let isr = image_of(&[say(b'!'), reti()], 0x4400);
        m.bus_mut().load_image(&isr).unwrap();
        m
    }

    #[test]
    fn timer_interrupt_delivers_and_returns() {
        use crate::irq::{IrqSchedule, IrqTimer};

        for engine in [Engine::Interp, Engine::Predecoded] {
            let mut m = irq_machine(engine);
            m.bus_mut().attach_timer(IrqTimer::new(IrqSchedule::periodic(500, 100), 0x4400));
            let out = m.run(2_000).unwrap();
            assert_eq!(out.exit, ExitReason::CycleLimit);
            assert_eq!(out.stats.irq_delivered, 4, "fires at 100/600/1100/1600 ({engine:?})");
            assert_eq!(out.console, b"!!!!");
            assert_eq!(out.stats.irq_latency_cycles, 4 * u64::from(IRQ_LATENCY_CYCLES));
            // reti restored SR with GIE set, so the spin loop keeps taking
            // interrupts — and the stack is balanced again.
            assert_eq!(m.cpu().sr() & FLAG_GIE, FLAG_GIE);
            assert_eq!(m.cpu().sp(), 0x3000);
        }
    }

    #[test]
    fn interrupts_masked_until_eint() {
        use crate::irq::{IrqSchedule, IrqTimer};

        let mut m = Fr2355::machine(Frequency::MHZ_8);
        // No eint: GIE stays clear, nothing is ever delivered; fires
        // coalesce into the single pending latch.
        m.load(&image_of(&[Instr::Jump { op: Opcode::Jmp, offset_words: -1 }], 0x4000));
        m.bus_mut().attach_timer(IrqTimer::new(IrqSchedule::periodic(100, 50), 0x4400));
        let out = m.run(1_000).unwrap();
        assert_eq!(out.exit, ExitReason::CycleLimit);
        assert_eq!(out.stats.irq_delivered, 0);
        assert!(out.stats.irq_coalesced >= 8, "pending requests coalesce while masked");
        assert!(m.bus().irq_pending());
    }

    #[test]
    fn gie_cleared_during_isr_prevents_nesting() {
        use crate::irq::{IrqSchedule, IrqTimer};

        let mut m = Fr2355::machine(Frequency::MHZ_8);
        let set_sp = Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Imm(0x3000),
            dst: Operand::Reg(Reg::SP),
        };
        m.load(&image_of(
            &[set_sp, eint(), Instr::Jump { op: Opcode::Jmp, offset_words: -1 }],
            0x4000,
        ));
        // ISR that spins forever: with GIE cleared on entry, the dense
        // periodic schedule must deliver exactly once.
        let isr = image_of(&[Instr::Jump { op: Opcode::Jmp, offset_words: -1 }], 0x4400);
        m.bus_mut().load_image(&isr).unwrap();
        m.bus_mut().attach_timer(IrqTimer::new(IrqSchedule::periodic(50, 100), 0x4400));
        let out = m.run(5_000).unwrap();
        assert_eq!(out.exit, ExitReason::CycleLimit);
        assert_eq!(out.stats.irq_delivered, 1);
        assert_eq!(m.cpu().sr() & FLAG_GIE, 0, "hardware cleared GIE on entry");
    }

    #[test]
    fn invalid_vector_is_typed_error() {
        use crate::irq::{IrqSchedule, IrqTimer};

        let mut m = Fr2355::machine(Frequency::MHZ_8);
        m.load(&image_of(
            &[eint(), Instr::Jump { op: Opcode::Jmp, offset_words: -1 }],
            0x4000,
        ));
        m.bus_mut().attach_timer(IrqTimer::new(IrqSchedule::periodic(50, 50), 0x4401));
        assert!(matches!(m.run(1_000), Err(SimError::Hook(_))));
    }

    #[test]
    fn power_cycle_clears_pending_interrupt() {
        use crate::irq::{IrqSchedule, IrqTimer};

        let mut m = Fr2355::machine(Frequency::MHZ_8);
        // Masked the whole run, so the one-shot fire stays latched.
        m.load(&image_of(&[Instr::Jump { op: Opcode::Jmp, offset_words: -1 }], 0x4000));
        m.bus_mut().attach_timer(IrqTimer::new(IrqSchedule::at(vec![50]), 0x4400));
        let out = m.run(500).unwrap();
        assert_eq!(out.exit, ExitReason::CycleLimit);
        assert!(m.bus().irq_pending());
        m.power_cycle();
        assert!(!m.bus().irq_pending(), "latched requests are volatile");
        assert!(m.bus().timer().is_some(), "the schedule itself survives");
    }

    #[test]
    fn power_cycle_partitions_persistent_from_volatile_state() {
        use crate::fault::{EnergyShape, EnergyTrace};

        let mut m = Fr2355::machine(Frequency::MHZ_8);
        m.load(&image_of(&[Instr::Jump { op: Opcode::Jmp, offset_words: -1 }], 0x4000));

        // Energy-trace fault cursor: cumulative bench clock, survives.
        let trace = EnergyTrace::new(EnergyShape::RcCharge, 600, 5);
        m.attach_fault_plan(trace.plan_until(10_000));
        let total = m.fault_plan().unwrap().events().len();
        let out = m.run(100_000).unwrap();
        assert_eq!(out.exit, ExitReason::PowerLoss);
        assert_eq!(m.fault_plan().unwrap().fired(), 1);

        // Volatile state to be lost: SRAM byte, port output. Persistent
        // state to survive: an FRAM word (e.g. a watchdog counter in the
        // metadata section) and a journalled port snapshot (resume frame
        // I/O log).
        m.bus_mut().poke_byte(0x2100, 0xAB);
        m.bus_mut().write_word(crate::ports::CONSOLE, 0x41).unwrap();
        m.bus_mut().poke_word(0xB7F0, 0x1234);
        m.bus_mut().nv_stash_ports(0xB7F0, 7);

        m.power_cycle();

        let plan = m.fault_plan().unwrap();
        assert_eq!(plan.fired(), 1, "fault cursor survives like the bench clock");
        assert_eq!(plan.events().len(), total, "no events dropped");
        assert_eq!(m.bus().peek_word(0xB7F0), 0x1234, "FRAM persists");
        assert_eq!(m.bus().nv_stashed_tag(0xB7F0), Some(7), "NV I/O journal persists");
        assert_eq!(m.bus().peek_byte(0x2100), 0, "SRAM cleared");
        assert!(m.bus().ports().console().is_empty(), "live port state cleared");
        let restored = m.bus_mut().nv_restore_ports(0xB7F0, 7);
        assert!(restored, "matching tag restores the snapshot");
        assert_eq!(m.bus().ports().console(), [0x41], "snapshot replays checkpoint-time output");
        assert!(!m.bus_mut().nv_restore_ports(0xB7F0, 8), "stale tag must not replay");
    }

    #[test]
    fn boundary_hook_sees_entry_and_return() {
        use crate::irq::{IrqSchedule, IrqTimer};
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Auditor {
            seen: Rc<RefCell<Vec<IrqBoundary>>>,
        }
        impl Hook for Auditor {
            fn on_trap(&mut self, _c: &mut Cpu, _b: &mut Bus, _pc: u16) -> SimResult<TrapAction> {
                unreachable!("no trap window entry in this test")
            }
            fn on_interrupt_boundary(
                &mut self,
                _cpu: &mut Cpu,
                _bus: &mut Bus,
                boundary: IrqBoundary,
            ) -> SimResult<()> {
                self.seen.borrow_mut().push(boundary);
                Ok(())
            }
        }

        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut m = irq_machine(Engine::Interp);
        m.attach_hook(Box::new(Auditor { seen: Rc::clone(&seen) }));
        m.bus_mut().attach_timer(IrqTimer::new(IrqSchedule::at(vec![100]), 0x4400));
        let out = m.run(1_000).unwrap();
        assert_eq!(out.stats.irq_delivered, 1);
        assert_eq!(*seen.borrow(), vec![IrqBoundary::Entry, IrqBoundary::Return]);
    }

    #[test]
    fn console_and_checksum_collected() {
        let say = |b: u8| Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Byte,
            src: Operand::Imm(u16::from(b)),
            dst: Operand::Absolute(ports::CONSOLE),
        };
        let sum = |w: u16| Instr::FormatI {
            op: Opcode::Mov,
            size: Size::Word,
            src: Operand::Imm(w),
            dst: Operand::Absolute(ports::CHECKSUM),
        };
        let mut m = Fr2355::machine(Frequency::MHZ_24);
        m.load(&image_of(&[say(b'h'), say(b'i'), sum(0x1234), halt_with(0)], 0x4000));
        let out = m.run(10_000).unwrap();
        assert_eq!(out.console, b"hi");
        assert_eq!(out.checksum, (ports::checksum_of_words([0x1234]), 1));
    }
}
