//! Error types for the simulator.

use std::error::Error;
use std::fmt;

/// Result alias used throughout the simulator crates.
pub type SimResult<T> = Result<T, SimError>;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A register number outside `0..=15` was requested.
    BadRegister(u8),
    /// An instruction could not be encoded or decoded.
    BadEncoding(String),
    /// A memory access touched an unmapped or non-writable address.
    BusFault {
        /// The faulting address.
        addr: u16,
        /// Human-readable description of the access.
        what: String,
    },
    /// A word access to an odd address.
    Unaligned(u16),
    /// Execution exceeded the configured cycle budget without halting.
    CycleLimit(u64),
    /// A runtime hook reported an unrecoverable condition.
    Hook(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadRegister(n) => write!(f, "register number {n} out of range"),
            SimError::BadEncoding(msg) => write!(f, "bad instruction encoding: {msg}"),
            SimError::BusFault { addr, what } => {
                write!(f, "bus fault at 0x{addr:04x}: {what}")
            }
            SimError::Unaligned(addr) => write!(f, "unaligned word access at 0x{addr:04x}"),
            SimError::CycleLimit(n) => write!(f, "cycle limit of {n} exceeded"),
            SimError::Hook(msg) => write!(f, "runtime hook error: {msg}"),
        }
    }
}

impl Error for SimError {}
